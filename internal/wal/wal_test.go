package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stburst/internal/stream"
)

// testBatches returns n deterministic batches of varying shape,
// including a document with no terms (fully stopworded) to keep the
// codec honest about empty count maps.
func testBatches(n int) [][]stream.AppendDoc {
	out := make([][]stream.AppendDoc, n)
	for i := range out {
		docs := make([]stream.AppendDoc, 1+i%3)
		for j := range docs {
			counts := map[string]int{}
			for k := 0; k <= (i+j)%3; k++ {
				counts[fmt.Sprintf("term-%d-%d", i, k)] = k + 1
			}
			if (i+j)%5 == 4 {
				counts = map[string]int{} // everything stopworded
			}
			docs[j] = stream.AppendDoc{Stream: i % 4, Time: (i + j) % 7, Counts: counts}
		}
		out[i] = docs
	}
	return out
}

// fillLog appends batches to a fresh log in dir and returns the
// cumulative Stats().Bytes after each append — the frame boundaries
// the truncation sweeps anchor on — plus the appended batches.
func fillLog(t *testing.T, dir string, opts Options, n int) (bounds []int64, batches [][]stream.AppendDoc) {
	t.Helper()
	l, pending, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh log has %d pending batches", len(pending))
	}
	batches = testBatches(n)
	for i, docs := range batches {
		seq, err := l.Append(uint64(i+1), uint64(i*10), docs)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
		bounds = append(bounds, l.Stats().Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return bounds, batches
}

// copyDir clones every regular file of src into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestEmptyLogBoots(t *testing.T) {
	dir := t.TempDir()
	for pass := 0; pass < 2; pass++ {
		l, pending, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if len(pending) != 0 {
			t.Fatalf("pass %d: %d pending batches in an empty log", pass, len(pending))
		}
		st := l.Stats()
		if st.LastSeq != 0 || st.Batches != 0 || st.Segments != 1 || st.Bytes != headerLen {
			t.Fatalf("pass %d: unexpected stats %+v", pass, st)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroLengthSegmentBoots covers a crash between segment creation
// and the header write: the file exists with zero bytes.
func TestZeroLengthSegmentBoots(t *testing.T) {
	dir := t.TempDir()
	name := fmt.Sprintf("%s%016x%s", segPrefix, uint64(1), segSuffix)
	if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, pending, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(pending) != 0 {
		t.Fatalf("%d pending batches", len(pending))
	}
	if _, err := l.Append(1, 0, testBatches(1)[0]); err != nil {
		t.Fatalf("append after zero-length boot: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, batches := fillLog(t, dir, Options{}, 6)
	l, pending, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(pending) != len(batches) {
		t.Fatalf("recovered %d batches, want %d", len(pending), len(batches))
	}
	for i, b := range pending {
		if b.Seq != uint64(i+1) || b.PreGen != uint64(i+1) || b.BaseDocs != uint64(i*10) {
			t.Errorf("batch %d header = (seq %d, preGen %d, baseDocs %d)", i, b.Seq, b.PreGen, b.BaseDocs)
		}
		if !reflect.DeepEqual(b.Docs, batches[i]) {
			t.Errorf("batch %d docs round-tripped to %+v, want %+v", i, b.Docs, batches[i])
		}
	}
	st := l.Stats()
	if st.LastSeq != uint64(len(batches)) || st.Batches != len(batches) {
		t.Errorf("stats after reopen: %+v", st)
	}
	// The log continues the sequence after recovery.
	seq, err := l.Append(9, 99, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(batches)+1) {
		t.Errorf("post-recovery append got seq %d, want %d", seq, len(batches)+1)
	}
}

// TestTornTailSweep truncates the log at every byte offset and asserts
// recovery returns exactly the frames that lie wholly before the cut —
// never an error, never a partial frame: the torn-write crash model.
func TestTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	bounds, batches := fillLog(t, dir, Options{}, 4)
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	size := bounds[len(bounds)-1]
	for cut := int64(0); cut < size; cut++ {
		work := copyDir(t, dir)
		path := filepath.Join(work, segs[0])
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		l, pending, err := Open(work, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(pending) != want {
			l.Close()
			t.Fatalf("cut %d: recovered %d batches, want %d", cut, len(pending), want)
		}
		for i, b := range pending {
			if !reflect.DeepEqual(b.Docs, batches[i]) {
				l.Close()
				t.Fatalf("cut %d: batch %d corrupted in recovery", cut, i)
			}
		}
		// The truncated tail must be gone from disk so the log can keep
		// appending cleanly right where the intact prefix ends.
		if _, err := l.Append(1, 1, batches[0]); err != nil {
			l.Close()
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l.Close()
		l2, pending2, err := Open(work, Options{})
		if err != nil || len(pending2) != want+1 {
			t.Fatalf("cut %d: second recovery got %d batches, err %v; want %d", cut, len(pending2), err, want+1)
		}
		l2.Close()
	}
}

// TestMidLogFlipSweep flips every byte of a mid-log frame (and of the
// segment header) and asserts recovery reports a hard error rather
// than silently skipping acknowledged data.
func TestMidLogFlipSweep(t *testing.T) {
	dir := t.TempDir()
	bounds, _ := fillLog(t, dir, Options{}, 3)
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Segment header plus all of frame 2 (frame 3 follows it, so any
	// damage here is mid-log).
	for off := int64(0); off < bounds[1]; off++ {
		if off >= headerLen && off < bounds[0] {
			continue // frame 1: equally mid-log, sampled by symmetry via frame 2
		}
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); err == nil {
			t.Fatalf("flipping byte %d recovered without error", off)
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFinalFrameFlip: damage to the final frame's payload is a torn
// tail (the frame drops, earlier frames survive), while damage to its
// header is a hard error — truncation can never corrupt bytes it
// leaves behind, so a bad header checksum is disk corruption.
func TestFinalFrameFlip(t *testing.T) {
	dir := t.TempDir()
	bounds, batches := fillLog(t, dir, Options{}, 3)
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameStart := bounds[1]
	for off := frameStart; off < bounds[2]; off++ {
		work := copyDir(t, dir)
		wpath := filepath.Join(work, segs[0])
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(wpath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, pending, err := Open(work, Options{})
		if off < frameStart+frameLen {
			if err == nil {
				l.Close()
				t.Fatalf("flipping final-frame header byte %d recovered without error", off)
			}
			continue
		}
		if err != nil {
			t.Fatalf("flipping final-frame payload byte %d: %v", off, err)
		}
		if len(pending) != 2 {
			l.Close()
			t.Fatalf("flipping payload byte %d recovered %d batches, want 2", off, len(pending))
		}
		if !reflect.DeepEqual(pending[1].Docs, batches[1]) {
			l.Close()
			t.Fatalf("payload flip at %d damaged an earlier frame", off)
		}
		l.Close()
	}
}

// writeRawFrames builds a segment by hand with the given sequence
// numbers — the harness for gap/duplicate coverage.
func writeRawFrames(t *testing.T, dir string, seqs ...uint64) {
	t.Helper()
	name := fmt.Sprintf("%s%016x%s", segPrefix, seqs[0], segSuffix)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeSegmentHeader(f); err != nil {
		t.Fatal(err)
	}
	var l Log
	for _, seq := range seqs {
		l.buf.Reset()
		encodePayload(&l.buf, seq, seq, 0, testBatches(1)[0])
		payload := l.buf.Bytes()
		hdr := make([]byte, frameLen)
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(hdr[0:8], castagnoli))
		if _, err := f.Write(append(hdr, payload...)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSequenceGapAndDuplicate(t *testing.T) {
	cases := []struct {
		name string
		seqs []uint64
		ok   bool
	}{
		{"consecutive", []uint64{1, 2, 3}, true},
		{"pruned prefix", []uint64{5, 6, 7}, true},
		{"gap", []uint64{1, 2, 4}, false},
		{"duplicate", []uint64{1, 2, 2}, false},
		{"regression", []uint64{2, 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeRawFrames(t, dir, tc.seqs...)
			l, pending, err := Open(dir, Options{})
			if tc.ok {
				if err != nil {
					t.Fatal(err)
				}
				defer l.Close()
				if len(pending) != len(tc.seqs) {
					t.Fatalf("recovered %d batches, want %d", len(pending), len(tc.seqs))
				}
				if st := l.Stats(); st.LastSeq != tc.seqs[len(tc.seqs)-1] {
					t.Fatalf("LastSeq %d, want %d", st.LastSeq, tc.seqs[len(tc.seqs)-1])
				}
			} else if err == nil {
				l.Close()
				t.Fatal("sequence anomaly recovered without error")
			}
		})
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	name := fmt.Sprintf("%s%016x%s", segPrefix, uint64(1), segSuffix)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("NOTAWAL\x00\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Error("bad magic recovered without error")
	}
	hdr := make([]byte, headerLen)
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], 2)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Error("future version recovered without error")
	}
}

func TestRotationAndMultiSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every batch lands in its own segment.
	bounds, batches := fillLog(t, dir, Options{SegmentBytes: 1}, 5)
	_ = bounds
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("expected 5 segments, found %v", segs)
	}
	l, pending, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(pending) != 5 {
		t.Fatalf("recovered %d batches across segments, want 5", len(pending))
	}
	for i, b := range pending {
		if b.Seq != uint64(i+1) || !reflect.DeepEqual(b.Docs, batches[i]) {
			t.Fatalf("batch %d wrong after multi-segment recovery", i)
		}
	}
	if st := l.Stats(); st.Segments != 5 {
		t.Errorf("stats count %d segments, want 5", st.Segments)
	}
}

// TestSealedSegmentCorruptionIsHard: any damage in a non-final segment
// is a hard error even at its very end — the torn-tail allowance
// applies only to the last segment, the only one a crash can tear.
func TestSealedSegmentCorruptionIsHard(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, Options{SegmentBytes: 1}, 3)
	segs, _ := listSegments(dir)
	if len(segs) != 3 {
		t.Fatalf("expected 3 segments, found %v", segs)
	}
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating a sealed segment (what would be a torn tail elsewhere).
	if err := os.Truncate(first, int64(len(data)-1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Error("truncated sealed segment recovered without error")
	}
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Flipping a payload byte at the sealed segment's exact end.
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 0xFF
	if err := os.WriteFile(first, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Error("corrupt sealed segment recovered without error")
	}
}

func TestExplicitRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batches := testBatches(4)
	// Rotate with no frames is a no-op: no empty segments pile up.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(dir); len(segs) != 1 {
		t.Fatalf("empty rotate created a segment: %v", segs)
	}
	for i, docs := range batches[:2] {
		if _, err := l.Append(uint64(i), uint64(i), docs); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, 2, batches[2]); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 2 || st.Batches != 3 {
		t.Fatalf("after rotate: %+v", st)
	}
	// Prune below the sealed segment's last frame keeps it.
	if err := l.Prune(1); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 2 {
		t.Fatalf("prune(1) removed a segment still holding frame 2: %+v", st)
	}
	// Prune at its last frame removes it; the active segment stays.
	if err := l.Prune(2); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.Segments != 1 || st.Batches != 1 || st.LastSeq != 3 {
		t.Fatalf("after prune(2): %+v", st)
	}
	if segs, _ := listSegments(dir); len(segs) != 1 {
		t.Fatalf("pruned segment still on disk: %v", segs)
	}
	// A log whose older segments were pruned reopens cleanly (first
	// frame carries a non-initial sequence).
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, pending, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(pending) != 1 || pending[0].Seq != 3 {
		t.Fatalf("post-prune recovery: %d batches, first seq %d", len(pending), pending[0].Seq)
	}
}

func TestInjectorWriteFaults(t *testing.T) {
	errBoom := errors.New("boom")
	for _, tc := range []struct {
		name    string
		err     error
		wantErr error
	}{
		{"error after N bytes", errBoom, errBoom},
		{"short write", nil, io.ErrShortWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := &Injector{}
			l, _, err := Open(dir, Options{Injector: inj})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			docs := testBatches(1)[0]
			if _, err := l.Append(1, 0, docs); err != nil {
				t.Fatal(err)
			}
			// Fail 5 bytes into the next frame: a torn write.
			inj.FailWritesAfter(5, tc.err)
			if _, err := l.Append(1, 1, docs); !errors.Is(err, tc.wantErr) {
				t.Fatalf("faulted append error = %v, want %v", err, tc.wantErr)
			}
			st := l.Stats()
			if st.LastSeq != 1 || st.Batches != 1 {
				t.Fatalf("failed append changed the log: %+v", st)
			}
			// The torn frame was rolled back: the log keeps appending and
			// recovery sees a clean, gap-free sequence.
			inj.Clear()
			if _, err := l.Append(1, 1, docs); err != nil {
				t.Fatalf("append after cleared fault: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, pending, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery after rolled-back fault: %v", err)
			}
			if len(pending) != 2 || pending[1].Seq != 2 {
				t.Fatalf("recovered %d batches, want the 2 acknowledged ones", len(pending))
			}
		})
	}
}

func TestInjectorSyncFaults(t *testing.T) {
	errSync := errors.New("sync fault")
	// Both flavors must fail the append and roll the frame back: data
	// whose durability is unknown is never acknowledged.
	for _, arm := range []func(*Injector){
		func(in *Injector) { in.FailBeforeSync(errSync) },
		func(in *Injector) { in.FailAfterSync(errSync) },
	} {
		dir := t.TempDir()
		inj := &Injector{}
		l, _, err := Open(dir, Options{Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		docs := testBatches(1)[0]
		arm(inj)
		if _, err := l.Append(1, 0, docs); !errors.Is(err, errSync) {
			t.Fatalf("append under sync fault = %v, want %v", err, errSync)
		}
		inj.Clear()
		seq, err := l.Append(1, 0, docs)
		if err != nil || seq != 1 {
			t.Fatalf("retry after sync fault: seq %d, %v", seq, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, pending, err := Open(dir, Options{})
		if err != nil || len(pending) != 1 {
			t.Fatalf("recovery after sync fault: %d batches, %v", len(pending), err)
		}
	}
}

// TestDroppedSyncCrash is the power-loss simulation: with fsync
// silently dropped, an acknowledged frame that a "crash" (manual
// truncation, as the page cache would lose it) removes is gone — and
// recovery handles the loss as a torn tail, exactly why SyncNever
// carries no durability guarantee.
func TestDroppedSyncCrash(t *testing.T) {
	dir := t.TempDir()
	inj := &Injector{}
	l, _, err := Open(dir, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	docs := testBatches(1)[0]
	if _, err := l.Append(1, 0, docs); err != nil {
		t.Fatal(err)
	}
	durable := l.Stats().Bytes
	inj.DropSyncs(true)
	if _, err := l.Append(1, 1, docs); err != nil {
		t.Fatal(err) // acknowledged...
	}
	if inj.Syncs() != 1 {
		t.Fatalf("injector counted %d real syncs, want only the pre-drop one", inj.Syncs())
	}
	l.Close()
	segs, _ := listSegments(dir)
	if err := os.Truncate(filepath.Join(dir, segs[0]), durable); err != nil {
		t.Fatal(err)
	}
	_, pending, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("...but lost: recovered %d batches, want 1", len(pending))
	}
}

func TestSyncPolicyCounts(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i, docs := range testBatches(3) {
		if _, err := l.Append(uint64(i), 0, docs); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Errorf("SyncNever performed %d frame syncs", st.Syncs)
	}
	l.Close()

	dir2 := t.TempDir()
	l2, _, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for i, docs := range testBatches(3) {
		if _, err := l2.Append(uint64(i), 0, docs); err != nil {
			t.Fatal(err)
		}
	}
	if st := l2.Stats(); st.Syncs != 3 {
		t.Errorf("SyncAlways synced %d times for 3 appends", st.Syncs)
	}
}
