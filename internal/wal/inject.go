package wal

import (
	"io"
	"os"
	"sync"
)

// Injector is a failpoint-style fault injector the test suite threads
// through a Log (Options.Injector) to exercise every failure mode of
// the append path without touching the filesystem layer itself: writes
// that fail partway through a frame, short writes, fsyncs that fail
// before or after reaching the disk, and fsyncs that silently do
// nothing (the crash model: acknowledged to the caller, gone on
// "power loss").
//
// An Injector is safe for concurrent use. The zero value injects
// nothing and passes every operation through.
type Injector struct {
	mu sync.Mutex
	// write-budget fault: writes succeed until budget bytes have gone
	// through, then the next write persists only the remaining budget
	// (a torn frame on disk) and returns writeErr — or io.ErrShortWrite
	// with no error configured, modeling a short write.
	budgetSet bool
	budget    int64
	writeErr  error

	beforeSyncErr error
	afterSyncErr  error
	dropSyncs     bool

	writes int64 // bytes actually written through the injector
	syncs  int   // fsyncs actually performed (dropped syncs excluded)
}

// FailWritesAfter arms the write fault: the next n bytes write
// normally, then the write that would exceed the budget persists only
// its in-budget prefix and fails with err. A nil err fails with
// io.ErrShortWrite instead — the short-write writer. n = 0 fails the
// very next write.
func (in *Injector) FailWritesAfter(n int64, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.budgetSet = true
	in.budget = n
	in.writeErr = err
}

// FailBeforeSync makes every fsync fail with err without syncing —
// the data may or may not reach the disk, and the caller must treat
// the batch as unacknowledged.
func (in *Injector) FailBeforeSync(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.beforeSyncErr = err
}

// FailAfterSync performs every fsync and then fails it with err — the
// data IS durable but the caller cannot know; it models the crash
// window between fsync returning in the kernel and the acknowledgment
// reaching the application.
func (in *Injector) FailAfterSync(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.afterSyncErr = err
}

// DropSyncs makes every fsync succeed without doing anything: the log
// acknowledges batches that were never made durable. Combined with
// truncating the segment file, tests simulate a power loss after an
// unsynced write.
func (in *Injector) DropSyncs(drop bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dropSyncs = drop
}

// Clear disarms every fault; the counters keep counting.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.budgetSet = false
	in.budget = 0
	in.writeErr = nil
	in.beforeSyncErr = nil
	in.afterSyncErr = nil
	in.dropSyncs = false
}

// Writes returns the total bytes written through the injector.
func (in *Injector) Writes() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.writes
}

// Syncs returns the number of fsyncs actually performed (dropped
// syncs are not counted — they never reached the disk).
func (in *Injector) Syncs() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.syncs
}

// write is the Log's write hook.
func (in *Injector) write(f *os.File, p []byte) (int, error) {
	in.mu.Lock()
	if !in.budgetSet || int64(len(p)) <= in.budget {
		if in.budgetSet {
			in.budget -= int64(len(p))
		}
		in.writes += int64(len(p))
		in.mu.Unlock()
		return f.Write(p)
	}
	// The write exceeds the budget: persist the prefix, then fail.
	keep := in.budget
	in.budget = 0
	failErr := in.writeErr
	if failErr == nil {
		failErr = io.ErrShortWrite
	}
	in.writes += keep
	in.mu.Unlock()
	n, err := f.Write(p[:keep])
	if err != nil {
		return n, err
	}
	return n, failErr
}

// sync is the Log's fsync hook.
func (in *Injector) sync(f *os.File) error {
	in.mu.Lock()
	before, after, drop := in.beforeSyncErr, in.afterSyncErr, in.dropSyncs
	in.mu.Unlock()
	if before != nil {
		return before
	}
	if drop {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	in.mu.Lock()
	in.syncs++
	in.mu.Unlock()
	return after
}
