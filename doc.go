// Package stburst is a Go implementation of the spatiotemporal term
// burstiness framework of Lappas, Vieira, Gunopulos and Tsotras,
// "On the Spatiotemporal Burstiness of Terms", PVLDB 5(9), 2012.
//
// Given a set of document streams fixed at geographic locations, the
// package simultaneously tracks when and where a term's frequency is
// unusually high, and mines two kinds of spatiotemporal patterns:
//
//   - Combinatorial patterns (STComb): arbitrary sets of streams that
//     were simultaneously bursty over a common temporal interval, found
//     as maximum-weight cliques on the intersection graph of per-stream
//     bursty intervals.
//
//   - Regional patterns (STLocal): axis-oriented rectangles on the map
//     together with the maximal timeframes over which the region was
//     bursty, maintained online as snapshots arrive.
//
// The mined patterns power a bursty-document search engine: given a
// query, it retrieves documents that discuss influential events with a
// strong spatiotemporal impact, scoring each document by per-term
// relevance × burstiness and answering top-k queries with the Threshold
// Algorithm over an inverted index.
//
// # Quick start
//
//	streams := []stburst.StreamInfo{
//	    {Name: "tokyo", Location: stburst.Point{X: 139.7, Y: 35.7}},
//	    {Name: "lima", Location: stburst.Point{X: -77.0, Y: -12.0}},
//	}
//	c := stburst.NewCollection(streams, 52) // 52 weekly timestamps
//	c.AddText(0, 17, "earthquake strikes near the coast ...")
//	// ... add more documents ...
//
//	patterns := c.RegionalPatterns("earthquake", nil)
//	ix, err := c.Mine(ctx, stburst.KindRegional, nil)
//	hits := ix.Search("earthquake", 10)
//
// # Structured queries
//
// Every mined pattern carries a Rect and a [Start, End] timeframe, and
// the Query type makes both first-class in retrieval: "bursty documents
// about X, in this region, during this timeframe". A hit survives a
// Region/Time filter only if, for some query term, a contributing
// pattern — one that overlaps the document — intersects the filter.
// Queries also paginate (K/Offset), threshold (MinScore), and honor
// context cancellation:
//
//	page, err := ix.Query(ctx, stburst.Query{
//	    Text:   "earthquake rescue",
//	    Region: &stburst.Rect{MinX: -80, MinY: -20, MaxX: -60, MaxY: 0},
//	    Time:   &stburst.Timespan{Start: 15, End: 20},
//	    K:      10,
//	})
//	// page.Hits is the filtered ranked page; page.More flags later pages.
//
// Engine.Search(query, k) remains as a thin free-text wrapper over the
// same path.
//
// # Corpus-wide batch mining
//
// Mining term by term does not scale to whole vocabularies.
// Collection.Mine fans the corpus out across a bounded worker pool
// (MineOptions.Parallelism < 1 uses one worker per CPU; any worker count
// yields bit-identical output), honors context cancellation on the way,
// and returns a PatternIndex — a cached, query-ready store that answers
// pattern lookups and repeated searches without ever re-mining:
//
//	ix, err := c.Mine(ctx, stburst.KindRegional,
//	    stburst.NewMineOptions(stburst.WithParallelism(0)))
//	top := ix.RegionalPatterns("earthquake")
//	hits := ix.Search("earthquake rescue", 10) // engine built once, cached
//
// The MineAll* methods (MineAllRegional, MineAllCombinatorial,
// MineAllTemporal) are non-cancellable positional conveniences over
// Mine. The pre-index engine constructors NewRegionalEngine,
// NewCombinatorialEngine and NewTemporalEngine are deprecated: they mine
// with a background context and throw the index away, so prefer Mine
// followed by PatternIndex.Engine or PatternIndex.Query.
//
// # Snapshots: mine once, serve many
//
// Mining is the expensive step; queries are cheap. A PatternIndex
// persists to a versioned binary snapshot whose integrity is guarded by
// a canonical SHA-256 fingerprint, so serving processes load in
// milliseconds instead of re-mining at boot:
//
//	f, _ := os.Create("patterns.stb")
//	ix.Save(f) // snapshot = patterns + terms + fingerprint
//	f.Close()
//
//	// ... later, in a serving process over the same corpus:
//	f, _ = os.Open("patterns.stb")
//	loaded, err := stburst.LoadPatternIndex(f, c) // verified on load
//	hits = loaded.Search("earthquake rescue", 10)
//
// LoadCorpus rebuilds a Collection from the JSONL interchange format of
// cmd/stgen, interning deterministically so snapshots round-trip across
// processes with byte-identical fingerprints.
//
// # The multi-kind store
//
// The paper's three burstiness models (regional, combinatorial,
// temporal) expose different facets of the same corpus. A Store holds
// one PatternIndex per Kind over a shared Collection and serves them
// side by side: Query.Kind routes a query to one model, and KindAny —
// the zero Kind, so an absent "kind" in the JSON shape — fans out to
// every resident index and merges the rankings by score, tagging each
// Hit with the Kind that scored it. MineStore mines all three kinds in
// one pass over a single worker pool:
//
//	store, err := c.MineStore(ctx, nil) // (term, kind) work list, one pool
//	page, err := store.Query(ctx, stburst.Query{Text: "earthquake", K: 10})
//	for _, h := range page.Hits {
//	    fmt.Println(h.Kind, h.Doc.ID, h.Score) // per-model attribution
//	}
//
// A Store persists as a bundle — a manifest of per-kind members, each a
// complete snapshot, under one stream checksum — and loads back with
// every layer verified:
//
//	f, _ := os.Create("corpus.bundle")
//	store.Save(f)
//	f.Close()
//
//	// ... later, in a serving process over the same corpus:
//	f, _ = os.Open("corpus.bundle")
//	loaded, err := stburst.LoadStore(f, c) // also accepts a bare .stb
//
// The resident set lives behind one atomic pointer, so a long-running
// service hot-swaps freshly mined indexes without pausing queries:
// Store.Swap(kind, ix) replaces one kind, Store.Replace installs a
// whole new set in a single atomic step, and queries in flight keep the
// set they resolved.
//
// # Live ingestion
//
// The paper's corpus is a continuously arriving stream, so a mined
// store is not the end of the story: Collection.Append publishes
// freshly arrived documents atomically under any number of concurrent
// readers and reports the dirty terms — the ones whose patterns went
// stale — and Store.Ingest builds the whole write path from it: append
// the batch, re-mine only the dirty terms per resident kind (per-term
// mining depends only on that term's own streams, so the refreshed
// indexes are bit-identical to a from-scratch MineStore over the
// appended corpus), warm the engines, and install the refreshed set
// with the same atomic Replace a reload uses:
//
//	res, err := store.Ingest(ctx, []stburst.IncomingDocument{
//	    {Stream: 0, Time: 18, Text: "aftershocks rattle the coast"},
//	})
//	// res.Generation: cache-busting token; res.DirtyTerms: re-mined terms
//
// Every store mutation (Swap, Replace, Ingest) advances the
// monotonically increasing Store.Generation, which bundles persist and
// LoadStore restores, so clients can cache-bust across restarts. For a
// live trickle, an Ingester amortizes the per-batch re-mine over a
// flush size and/or interval:
//
//	ing := stburst.NewIngester(store,
//	    stburst.WithFlushDocs(64),
//	    stburst.WithFlushInterval(2*time.Second))
//	defer ing.Close() // flushes what is left
//	ing.Add(stburst.IncomingDocument{Stream: 1, Time: 18, Text: "..."})
//
// The CLI pipeline mirrors the API: stgen generates a corpus,
// stmine -all -method all -o mines it into a bundle, and stserve loads
// the bundle and serves the versioned /v1 JSON API — POST /v1/search
// (the Query JSON shape, including "kind"), GET /v1/patterns/{term}
// with kind/region/from/to filters, GET /v1/indexes, POST /v1/documents
// (live batch ingest, behind the -ingest flag) with GET /v1/generation
// for cache-busting, POST /v1/reload (atomic snapshot reload — now the
// cold-path alternative to live ingestion), /v1/stats and /v1/healthz —
// plus the legacy unversioned aliases, off the immutable indexes.
//
// See README.md for the CLI tour, the examples directory for runnable
// end-to-end programs, and DESIGN.md for the system inventory, the
// request flow of the /v1 service, the snapshot and bundle format
// specifications and the concurrency contracts of the mining engine;
// cmd/stbench reproduces every table and figure of the paper's
// evaluation.
package stburst
