// Package stburst is a Go implementation of the spatiotemporal term
// burstiness framework of Lappas, Vieira, Gunopulos and Tsotras,
// "On the Spatiotemporal Burstiness of Terms", PVLDB 5(9), 2012.
//
// Given a set of document streams fixed at geographic locations, the
// package simultaneously tracks when and where a term's frequency is
// unusually high, and mines two kinds of spatiotemporal patterns:
//
//   - Combinatorial patterns (STComb): arbitrary sets of streams that
//     were simultaneously bursty over a common temporal interval, found
//     as maximum-weight cliques on the intersection graph of per-stream
//     bursty intervals.
//
//   - Regional patterns (STLocal): axis-oriented rectangles on the map
//     together with the maximal timeframes over which the region was
//     bursty, maintained online as snapshots arrive.
//
// The mined patterns power a bursty-document search engine: given a
// query, it retrieves documents that discuss influential events with a
// strong spatiotemporal impact, scoring each document by per-term
// relevance × burstiness and answering top-k queries with the Threshold
// Algorithm over an inverted index.
//
// # Quick start
//
//	streams := []stburst.StreamInfo{
//	    {Name: "tokyo", Location: stburst.Point{X: 139.7, Y: 35.7}},
//	    {Name: "lima", Location: stburst.Point{X: -77.0, Y: -12.0}},
//	}
//	c := stburst.NewCollection(streams, 52) // 52 weekly timestamps
//	c.AddText(0, 17, "earthquake strikes near the coast ...")
//	// ... add more documents ...
//
//	patterns := c.RegionalPatterns("earthquake", nil)
//	engine := stburst.NewRegionalEngine(c, nil)
//	hits := engine.Search("earthquake", 10)
//
// # Corpus-wide batch mining
//
// Mining term by term does not scale to whole vocabularies. The batch
// miners fan the corpus out across a bounded worker pool (parallelism
// < 1 uses one worker per CPU; any worker count yields bit-identical
// output) and return a PatternIndex — a cached, query-ready store that
// answers pattern lookups and repeated searches without ever re-mining:
//
//	ix := c.MineAllRegional(nil, 0) // one worker per CPU
//	top := ix.RegionalPatterns("earthquake")
//	hits := ix.Search("earthquake rescue", 10) // engine built once, cached
//
// # Snapshots: mine once, serve many
//
// Mining is the expensive step; queries are cheap. A PatternIndex
// persists to a versioned binary snapshot whose integrity is guarded by
// a canonical SHA-256 fingerprint, so serving processes load in
// milliseconds instead of re-mining at boot:
//
//	f, _ := os.Create("patterns.stb")
//	ix.Save(f) // snapshot = patterns + terms + fingerprint
//	f.Close()
//
//	// ... later, in a serving process over the same corpus:
//	f, _ = os.Open("patterns.stb")
//	loaded, err := stburst.LoadPatternIndex(f, c) // verified on load
//	hits = loaded.Search("earthquake rescue", 10)
//
// LoadCorpus rebuilds a Collection from the JSONL interchange format of
// cmd/stgen, interning deterministically so snapshots round-trip across
// processes with byte-identical fingerprints. The CLI pipeline mirrors
// the API: stgen generates a corpus, stmine -all -o mines it into a
// snapshot, and stserve loads the snapshot and serves /patterns/{term},
// /search, /stats and /healthz over HTTP off the immutable index.
//
// See README.md for the CLI tour, the examples directory for runnable
// end-to-end programs, and DESIGN.md for the system inventory, the
// snapshot format specification and the concurrency contracts of the
// mining engine; cmd/stbench reproduces every table and figure of the
// paper's evaluation.
package stburst
