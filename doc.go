// Package stburst is a Go implementation of the spatiotemporal term
// burstiness framework of Lappas, Vieira, Gunopulos and Tsotras,
// "On the Spatiotemporal Burstiness of Terms", PVLDB 5(9), 2012.
//
// Given a set of document streams fixed at geographic locations, the
// package simultaneously tracks when and where a term's frequency is
// unusually high, and mines two kinds of spatiotemporal patterns:
//
//   - Combinatorial patterns (STComb): arbitrary sets of streams that
//     were simultaneously bursty over a common temporal interval, found
//     as maximum-weight cliques on the intersection graph of per-stream
//     bursty intervals.
//
//   - Regional patterns (STLocal): axis-oriented rectangles on the map
//     together with the maximal timeframes over which the region was
//     bursty, maintained online as snapshots arrive.
//
// The mined patterns power a bursty-document search engine: given a
// query, it retrieves documents that discuss influential events with a
// strong spatiotemporal impact, scoring each document by per-term
// relevance × burstiness and answering top-k queries with the Threshold
// Algorithm over an inverted index.
//
// # Quick start
//
//	streams := []stburst.StreamInfo{
//	    {Name: "tokyo", Location: stburst.Point{X: 139.7, Y: 35.7}},
//	    {Name: "lima", Location: stburst.Point{X: -77.0, Y: -12.0}},
//	}
//	c := stburst.NewCollection(streams, 52) // 52 weekly timestamps
//	c.AddText(0, 17, "earthquake strikes near the coast ...")
//	// ... add more documents ...
//
//	patterns := c.RegionalPatterns("earthquake", nil)
//	engine := stburst.NewRegionalEngine(c, nil)
//	hits := engine.Search("earthquake", 10)
//
// # Corpus-wide batch mining
//
// Mining term by term does not scale to whole vocabularies. The batch
// miners fan the corpus out across a bounded worker pool (parallelism
// < 1 uses one worker per CPU; any worker count yields bit-identical
// output) and return a PatternIndex — a cached, query-ready store that
// answers pattern lookups and repeated searches without ever re-mining:
//
//	ix := c.MineAllRegional(nil, 0) // one worker per CPU
//	top := ix.RegionalPatterns("earthquake")
//	hits := ix.Search("earthquake rescue", 10) // engine built once, cached
//
// See the examples directory for runnable end-to-end programs and
// DESIGN.md for the system inventory and the concurrency contracts of
// the mining engine; cmd/stbench reproduces every table and figure of
// the paper's evaluation.
package stburst
