# Tier-1 verification plus the race/determinism and benchmark suites,
# and the snapshot/serving pipeline.
#
#   make             # build + vet + full tests (tier-1)
#   make test-short  # seconds-fast subset (heavy corpus reproductions skipped)
#   make race        # concurrency suite under the race detector
#   make bench       # all benchmarks, including the MineAll speedup pair
#   make bench-json  # query + mine benchmarks as JSON into $(BENCH_JSON)
#   make bench-smoke # one-iteration benchmark pass (CI: does the harness run?)
#   make verify      # tier-1 + race: what CI should run
#   make snapshot    # stgen a corpus (if missing) and stmine it into $(SNAPSHOT)
#   make bundle      # stmine all three kinds into $(BUNDLE)
#   make serve       # stserve the bundle on $(ADDR)
#   make load        # boot stserve on the bundle and drive $(LOAD_ARGS) at it
#   make loadtest    # the in-process stload smoke (what CI runs)

GO ?= go
CORPUS ?= corpus.jsonl
SNAPSHOT ?= snapshot.stb
BUNDLE ?= corpus.bundle
ADDR ?= :8080
BENCH_JSON ?= BENCH_PR6.json
LOAD_ADDR ?= 127.0.0.1:8093
LOAD_ARGS ?= -duration 10s -concurrency 8 -write-fraction 0.1
BENCH_TIME ?= 1s
# The serving-path benchmarks: retrieval (plain, filtered, store-routed,
# KindAny fan-out), mining (per-kind batch, one-pass MineStore), and the
# live write path (incremental ingest vs the full re-mine it replaces).
BENCH_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkMineAll|BenchmarkMineStore|BenchmarkIngest
# The smoke subset skips the corpus-wide mining benchmarks (tens of
# seconds per iteration); the ingest pair stays in — its per-iteration
# setup mines a small dedicated corpus, cheap enough for CI, and keeps
# both write paths provably runnable.
BENCH_SMOKE_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkIngest

# A failed stgen/stmine must not leave a truncated artifact that later
# runs treat as up to date.
.DELETE_ON_ERROR:

.PHONY: all build vet test test-short race bench bench-json bench-smoke verify snapshot bundle serve load loadtest

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex|TestLoaded|TestIngest|TestAppend' .
	$(GO) test -race ./internal/serve/ ./internal/metrics/

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable perf trajectory: the query and mine benchmarks as
# go-test JSON events, one artifact per PR for release-over-release
# comparison.
bench-json: build
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run '^$$' -json . > $(BENCH_JSON)

# One iteration of the query-side benchmarks: cheap enough for CI, and
# fails the build if the benchmark harness can no longer run at all.
bench-smoke: build
	$(GO) test -bench '$(BENCH_SMOKE_PATTERN)' -benchtime 1x -run '^$$' .

verify: test race

$(CORPUS):
	$(GO) run ./cmd/stgen -kind topix > $@

$(SNAPSHOT): $(CORPUS)
	$(GO) run ./cmd/stmine -all -corpus $(CORPUS) -o $@ > /dev/null

snapshot: $(SNAPSHOT)

$(BUNDLE): $(CORPUS)
	$(GO) run ./cmd/stmine -all -method all -corpus $(CORPUS) -o $@ > /dev/null

bundle: $(BUNDLE)

serve: $(BUNDLE)
	$(GO) run ./cmd/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(ADDR)

# Boot stserve (with ingestion armed) on the bundle, aim stload at it,
# print the JSON report, and tear the server down. LOAD_ARGS tunes the
# run; LOAD_ADDR keeps it off the default serving port.
load: $(BUNDLE)
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	./bin/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(LOAD_ADDR) -ingest & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(LOAD_ADDR)/v1/healthz > /dev/null 2>&1 && break; sleep 0.3; \
	done; \
	./bin/stload -target http://$(LOAD_ADDR) $(LOAD_ARGS); \
	echo "--- /metrics after the run ---"; \
	curl -sf http://$(LOAD_ADDR)/metrics | grep '^stserve_http_requests_total'

# The in-process load smoke CI runs: boots the real serve handler on a
# generated corpus inside the test binary and asserts the stload report
# parses with zero transport errors and server-matching counters — no
# ports, no background processes, race detector on.
loadtest: build
	$(GO) test -race -count=1 -run 'TestFlagValidation|TestReportRoundTrip|TestSmokeMixedLoad' ./cmd/stload/
