# Tier-1 verification plus the race/determinism and benchmark suites,
# and the snapshot/serving pipeline.
#
#   make            # build + vet + full tests (tier-1)
#   make test-short # seconds-fast subset (heavy corpus reproductions skipped)
#   make race       # concurrency suite under the race detector
#   make bench      # all benchmarks, including the MineAll speedup pair
#   make verify     # tier-1 + race: what CI should run
#   make snapshot   # stgen a corpus (if missing) and stmine it into $(SNAPSHOT)
#   make serve      # stserve the snapshot on $(ADDR)

GO ?= go
CORPUS ?= corpus.jsonl
SNAPSHOT ?= snapshot.stb
ADDR ?= :8080

# A failed stgen/stmine must not leave a truncated artifact that later
# runs treat as up to date.
.DELETE_ON_ERROR:

.PHONY: all build vet test test-short race bench verify snapshot serve

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex|TestLoaded' .
	$(GO) test -race ./cmd/stserve/

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

verify: test race

$(CORPUS):
	$(GO) run ./cmd/stgen -kind topix > $@

$(SNAPSHOT): $(CORPUS)
	$(GO) run ./cmd/stmine -all -corpus $(CORPUS) -o $@ > /dev/null

snapshot: $(SNAPSHOT)

serve: $(SNAPSHOT)
	$(GO) run ./cmd/stserve -corpus $(CORPUS) -snapshot $(SNAPSHOT) -addr $(ADDR)
