# Tier-1 verification plus the race/determinism and benchmark suites,
# and the snapshot/serving pipeline.
#
#   make             # build + vet + full tests (tier-1)
#   make test-short  # seconds-fast subset (heavy corpus reproductions skipped)
#   make race        # concurrency suite under the race detector
#   make bench       # all benchmarks, including the MineAll speedup pair
#   make bench-json  # query + mine benchmarks as JSON into $(BENCH_JSON)
#   make bench-smoke # one-iteration benchmark pass (CI: does the harness run?)
#   make verify      # tier-1 + race: what CI should run
#   make snapshot    # stgen a corpus (if missing) and stmine it into $(SNAPSHOT)
#   make bundle      # stmine all three kinds into $(BUNDLE)
#   make serve       # stserve the bundle on $(ADDR)

GO ?= go
CORPUS ?= corpus.jsonl
SNAPSHOT ?= snapshot.stb
BUNDLE ?= corpus.bundle
ADDR ?= :8080
BENCH_JSON ?= BENCH_PR5.json
BENCH_TIME ?= 1s
# The serving-path benchmarks: retrieval (plain, filtered, store-routed,
# KindAny fan-out), mining (per-kind batch, one-pass MineStore), and the
# live write path (incremental ingest vs the full re-mine it replaces).
BENCH_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkMineAll|BenchmarkMineStore|BenchmarkIngest
# The smoke subset skips the corpus-wide mining benchmarks (tens of
# seconds per iteration); the ingest pair stays in — its per-iteration
# setup mines a small dedicated corpus, cheap enough for CI, and keeps
# both write paths provably runnable.
BENCH_SMOKE_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkIngest

# A failed stgen/stmine must not leave a truncated artifact that later
# runs treat as up to date.
.DELETE_ON_ERROR:

.PHONY: all build vet test test-short race bench bench-json bench-smoke verify snapshot bundle serve

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex|TestLoaded|TestIngest|TestAppend' .
	$(GO) test -race ./cmd/stserve/

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable perf trajectory: the query and mine benchmarks as
# go-test JSON events, one artifact per PR for release-over-release
# comparison.
bench-json: build
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run '^$$' -json . > $(BENCH_JSON)

# One iteration of the query-side benchmarks: cheap enough for CI, and
# fails the build if the benchmark harness can no longer run at all.
bench-smoke: build
	$(GO) test -bench '$(BENCH_SMOKE_PATTERN)' -benchtime 1x -run '^$$' .

verify: test race

$(CORPUS):
	$(GO) run ./cmd/stgen -kind topix > $@

$(SNAPSHOT): $(CORPUS)
	$(GO) run ./cmd/stmine -all -corpus $(CORPUS) -o $@ > /dev/null

snapshot: $(SNAPSHOT)

$(BUNDLE): $(CORPUS)
	$(GO) run ./cmd/stmine -all -method all -corpus $(CORPUS) -o $@ > /dev/null

bundle: $(BUNDLE)

serve: $(BUNDLE)
	$(GO) run ./cmd/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(ADDR)
