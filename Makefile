# Tier-1 verification plus the race/determinism and benchmark suites,
# and the snapshot/serving pipeline.
#
#   make             # build + vet + full tests (tier-1)
#   make test-short  # seconds-fast subset (heavy corpus reproductions skipped)
#   make race        # concurrency suite under the race detector
#   make bench       # all benchmarks, including the MineAll speedup pair
#   make bench-json  # query + mine benchmarks as JSON into $(BENCH_JSON)
#   make bench-smoke # one-iteration benchmark pass (CI: does the harness run?)
#   make verify      # tier-1 + race: what CI should run
#   make snapshot    # stgen a corpus (if missing) and stmine it into $(SNAPSHOT)
#   make bundle      # stmine all three kinds into $(BUNDLE)
#   make serve       # stserve the bundle on $(ADDR)
#   make load        # boot stserve on the bundle and drive $(LOAD_ARGS) at it
#   make loadtest    # the in-process stload smoke (what CI runs)
#   make wal-smoke   # kill -9 a logging stserve mid-ingest, reboot, assert recovery

GO ?= go
CORPUS ?= corpus.jsonl
SNAPSHOT ?= snapshot.stb
BUNDLE ?= corpus.bundle
ADDR ?= :8080
BENCH_JSON ?= BENCH_PR6.json
LOAD_ADDR ?= 127.0.0.1:8093
LOAD_ARGS ?= -duration 10s -concurrency 8 -write-fraction 0.1
WAL_ADDR ?= 127.0.0.1:8094
WAL_TMP ?= walsmoke.tmp
BENCH_TIME ?= 1s
# The serving-path benchmarks: retrieval (plain, filtered, store-routed,
# KindAny fan-out), mining (per-kind batch, one-pass MineStore), and the
# live write path (incremental ingest vs the full re-mine it replaces).
BENCH_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkMineAll|BenchmarkMineStore|BenchmarkIngest
# The smoke subset skips the corpus-wide mining benchmarks (tens of
# seconds per iteration); the ingest pair stays in — its per-iteration
# setup mines a small dedicated corpus, cheap enough for CI, and keeps
# both write paths provably runnable.
BENCH_SMOKE_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkIngest

# A failed stgen/stmine must not leave a truncated artifact that later
# runs treat as up to date.
.DELETE_ON_ERROR:

.PHONY: all build vet test test-short race bench bench-json bench-smoke verify snapshot bundle serve load loadtest wal-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex|TestLoaded|TestIngest|TestAppend|TestWAL' .
	$(GO) test -race ./internal/serve/ ./internal/metrics/ ./internal/wal/

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable perf trajectory: the query and mine benchmarks as
# go-test JSON events, one artifact per PR for release-over-release
# comparison.
bench-json: build
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run '^$$' -json . > $(BENCH_JSON)

# One iteration of the query-side benchmarks: cheap enough for CI, and
# fails the build if the benchmark harness can no longer run at all.
bench-smoke: build
	$(GO) test -bench '$(BENCH_SMOKE_PATTERN)' -benchtime 1x -run '^$$' .

verify: test race

$(CORPUS):
	$(GO) run ./cmd/stgen -kind topix > $@

$(SNAPSHOT): $(CORPUS)
	$(GO) run ./cmd/stmine -all -corpus $(CORPUS) -o $@ > /dev/null

snapshot: $(SNAPSHOT)

$(BUNDLE): $(CORPUS)
	$(GO) run ./cmd/stmine -all -method all -corpus $(CORPUS) -o $@ > /dev/null

bundle: $(BUNDLE)

serve: $(BUNDLE)
	$(GO) run ./cmd/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(ADDR)

# Boot stserve (with ingestion armed) on the bundle, aim stload at it,
# print the JSON report, and tear the server down. LOAD_ARGS tunes the
# run; LOAD_ADDR keeps it off the default serving port.
load: $(BUNDLE)
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	./bin/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(LOAD_ADDR) -ingest & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(LOAD_ADDR)/v1/healthz > /dev/null 2>&1 && break; sleep 0.3; \
	done; \
	./bin/stload -target http://$(LOAD_ADDR) $(LOAD_ARGS); \
	echo "--- /metrics after the run ---"; \
	curl -sf http://$(LOAD_ADDR)/metrics | grep '^stserve_http_requests_total'

# The in-process load smoke CI runs: boots the real serve handler on a
# generated corpus inside the test binary and asserts the stload report
# parses with zero transport errors and server-matching counters — no
# ports, no background processes, race detector on.
loadtest: build
	$(GO) test -race -count=1 -run 'TestFlagValidation|TestReportRoundTrip|TestSmokeMixedLoad' ./cmd/stload/

# Crash-durability smoke over the real binaries: boot a logging stserve
# on a small generated corpus, drive write-only load through the WAL,
# kill -9 mid-flight state, reboot on the same log, and assert the
# generation and document count come back exactly — zero acknowledged
# batches lost. The root-package tests prove bit-identical recovery at
# every truncation point; this proves the shipped binaries wire it up.
wal-smoke:
	$(GO) build -o bin/stgen ./cmd/stgen
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	rm -rf $(WAL_TMP); mkdir -p $(WAL_TMP); \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf $(WAL_TMP)' EXIT; \
	./bin/stgen -kind topix -seed 1 -articles 0.4 -vocab 300 -tokens 8 > $(WAL_TMP)/corpus.jsonl; \
	boot() { \
		./bin/stserve -corpus $(WAL_TMP)/corpus.jsonl -addr $(WAL_ADDR) \
			-method stlocal -ingest -wal-dir $(WAL_TMP)/wal & pid=$$!; \
		for i in $$(seq 1 200); do \
			curl -sf http://$(WAL_ADDR)/v1/healthz > /dev/null 2>&1 && return 0; sleep 0.3; \
		done; \
		echo "wal-smoke: stserve did not become healthy" >&2; return 1; \
	}; \
	boot; \
	gen0=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	./bin/stload -target http://$(WAL_ADDR) -requests 60 -seed 1 -concurrency 4 \
		-write-fraction 1 -vocab 300 > $(WAL_TMP)/load.json; \
	gen1=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	docs1=$$(curl -sf http://$(WAL_ADDR)/v1/stats | grep -o '"docs": [0-9]*'); \
	test "$$gen0" != "$$gen1" || { echo "wal-smoke: load ingested nothing (generation never moved)" >&2; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	boot; \
	gen2=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	docs2=$$(curl -sf http://$(WAL_ADDR)/v1/stats | grep -o '"docs": [0-9]*'); \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	test "$$gen1" = "$$gen2" || { echo "wal-smoke: generation not recovered: pre-kill $$gen1, post-reboot $$gen2" >&2; exit 1; }; \
	test "$$docs1" = "$$docs2" || { echo "wal-smoke: documents lost: pre-kill $$docs1, post-reboot $$docs2" >&2; exit 1; }; \
	echo "wal-smoke: kill -9 survived — $$docs2 and $$gen2" | tr '\n' ' '; echo "recovered"
