# Tier-1 verification plus the race/determinism and benchmark suites,
# and the snapshot/serving pipeline.
#
#   make             # build + vet + full tests (tier-1)
#   make test-short  # seconds-fast subset (heavy corpus reproductions skipped)
#   make race        # concurrency suite under the race detector
#   make bench       # all benchmarks, including the MineAll speedup pair
#   make bench-json  # query + mine benchmarks as JSON into $(BENCH_JSON)
#   make bench-smoke # one-iteration benchmark pass (CI: does the harness run?)
#   make verify      # tier-1 + race: what CI should run
#   make snapshot    # stgen a corpus (if missing) and stmine it into $(SNAPSHOT)
#   make bundle      # stmine all three kinds into $(BUNDLE)
#   make serve       # stserve the bundle on $(ADDR)
#   make load        # boot stserve on the bundle and drive $(LOAD_ARGS) at it
#   make loadtest    # the in-process stload smoke (what CI runs)
#   make wal-smoke   # kill -9 a logging stserve mid-ingest, reboot, assert recovery
#   make cluster-smoke # 3-shard stserve cluster behind stgate, stload at the gateway
#   make alert-smoke # subscribe against a live stserve, ingest, assert webhook deliveries
#   make connector-smoke # kill -9 a tailing stserve mid-feed, reboot, assert zero gaps/dupes

GO ?= go
CORPUS ?= corpus.jsonl
SNAPSHOT ?= snapshot.stb
BUNDLE ?= corpus.bundle
ADDR ?= :8080
BENCH_JSON ?= BENCH_PR9.json
LOAD_ADDR ?= 127.0.0.1:8093
LOAD_ARGS ?= -duration 10s -concurrency 8 -write-fraction 0.1
WAL_ADDR ?= 127.0.0.1:8094
WAL_TMP ?= walsmoke.tmp
CLUSTER_GATE ?= 127.0.0.1:8095
CLUSTER_TMP ?= clustersmoke.tmp
ALERT_ADDR ?= 127.0.0.1:8099
ALERT_SINK ?= 127.0.0.1:8100
ALERT_TMP ?= alertsmoke.tmp
CONN_ADDR ?= 127.0.0.1:8101
CONN_TMP ?= connsmoke.tmp
BENCH_TIME ?= 1s
# The serving-path benchmarks: retrieval (plain, filtered, store-routed,
# KindAny fan-out), mining (per-kind batch, one-pass MineStore), the
# live write path (incremental ingest vs the full re-mine it replaces),
# and the post-ingest alert matcher as the registry grows 100x.
BENCH_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkMineAll|BenchmarkMineStore|BenchmarkIngest|BenchmarkAlertMatch
# The smoke subset skips the corpus-wide mining benchmarks (tens of
# seconds per iteration); the ingest pair stays in — its per-iteration
# setup mines a small dedicated corpus, cheap enough for CI, and keeps
# both write paths provably runnable.
BENCH_SMOKE_PATTERN ?= BenchmarkQuery|BenchmarkStoreQuery|BenchmarkIngest

# A failed stgen/stmine must not leave a truncated artifact that later
# runs treat as up to date.
.DELETE_ON_ERROR:

.PHONY: all build vet test test-short race bench bench-json bench-smoke verify snapshot bundle serve load loadtest wal-smoke cluster-smoke alert-smoke connector-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex|TestLoaded|TestIngest|TestAppend|TestWAL' .
	$(GO) test -race ./internal/serve/ ./internal/metrics/ ./internal/wal/ ./internal/gate/ ./internal/sub/ ./internal/connector/

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable perf trajectory: the query and mine benchmarks as
# go-test JSON events, one artifact per PR for release-over-release
# comparison.
bench-json: build
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run '^$$' -json . > $(BENCH_JSON)

# One iteration of the query-side benchmarks: cheap enough for CI, and
# fails the build if the benchmark harness can no longer run at all.
bench-smoke: build
	$(GO) test -bench '$(BENCH_SMOKE_PATTERN)' -benchtime 1x -run '^$$' .

verify: test race

$(CORPUS):
	$(GO) run ./cmd/stgen -kind topix > $@

$(SNAPSHOT): $(CORPUS)
	$(GO) run ./cmd/stmine -all -corpus $(CORPUS) -o $@ > /dev/null

snapshot: $(SNAPSHOT)

$(BUNDLE): $(CORPUS)
	$(GO) run ./cmd/stmine -all -method all -corpus $(CORPUS) -o $@ > /dev/null

bundle: $(BUNDLE)

serve: $(BUNDLE)
	$(GO) run ./cmd/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(ADDR)

# Boot stserve (with ingestion armed) on the bundle, aim stload at it,
# print the JSON report, and tear the server down. LOAD_ARGS tunes the
# run; LOAD_ADDR keeps it off the default serving port.
load: $(BUNDLE)
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	./bin/stserve -corpus $(CORPUS) -snapshot $(BUNDLE) -addr $(LOAD_ADDR) -ingest & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(LOAD_ADDR)/v1/healthz > /dev/null 2>&1 && break; sleep 0.3; \
	done; \
	./bin/stload -target http://$(LOAD_ADDR) $(LOAD_ARGS); \
	echo "--- /metrics after the run ---"; \
	curl -sf http://$(LOAD_ADDR)/metrics | grep '^stserve_http_requests_total'

# The in-process load smoke CI runs: boots the real serve handler on a
# generated corpus inside the test binary and asserts the stload report
# parses with zero transport errors and server-matching counters — no
# ports, no background processes, race detector on.
loadtest: build
	$(GO) test -race -count=1 -run 'TestFlagValidation|TestReportRoundTrip|TestSmokeMixedLoad' ./cmd/stload/

# Crash-durability smoke over the real binaries: boot a logging stserve
# on a small generated corpus, drive write-only load through the WAL,
# kill -9 mid-flight state, reboot on the same log, and assert the
# generation and document count come back exactly — zero acknowledged
# batches lost. The root-package tests prove bit-identical recovery at
# every truncation point; this proves the shipped binaries wire it up.
wal-smoke:
	$(GO) build -o bin/stgen ./cmd/stgen
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	rm -rf $(WAL_TMP); mkdir -p $(WAL_TMP); \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf $(WAL_TMP)' EXIT; \
	./bin/stgen -kind topix -seed 1 -articles 0.4 -vocab 300 -tokens 8 > $(WAL_TMP)/corpus.jsonl; \
	boot() { \
		./bin/stserve -corpus $(WAL_TMP)/corpus.jsonl -addr $(WAL_ADDR) \
			-method stlocal -ingest -wal-dir $(WAL_TMP)/wal & pid=$$!; \
		for i in $$(seq 1 200); do \
			curl -sf http://$(WAL_ADDR)/v1/healthz > /dev/null 2>&1 && return 0; sleep 0.3; \
		done; \
		echo "wal-smoke: stserve did not become healthy" >&2; return 1; \
	}; \
	boot; \
	gen0=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	./bin/stload -target http://$(WAL_ADDR) -requests 60 -seed 1 -concurrency 4 \
		-write-fraction 1 -vocab 300 > $(WAL_TMP)/load.json; \
	gen1=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	docs1=$$(curl -sf http://$(WAL_ADDR)/v1/stats | grep -o '"docs": [0-9]*'); \
	test "$$gen0" != "$$gen1" || { echo "wal-smoke: load ingested nothing (generation never moved)" >&2; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	boot; \
	gen2=$$(curl -sf http://$(WAL_ADDR)/v1/generation); \
	docs2=$$(curl -sf http://$(WAL_ADDR)/v1/stats | grep -o '"docs": [0-9]*'); \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	test "$$gen1" = "$$gen2" || { echo "wal-smoke: generation not recovered: pre-kill $$gen1, post-reboot $$gen2" >&2; exit 1; }; \
	test "$$docs1" = "$$docs2" || { echo "wal-smoke: documents lost: pre-kill $$docs1, post-reboot $$docs2" >&2; exit 1; }; \
	echo "wal-smoke: kill -9 survived — $$docs2 and $$gen2" | tr '\n' ' '; echo "recovered"

# Scatter-gather smoke over the real binaries: mine a 3-shard partition,
# boot one stserve per shard and an stgate over them, drive read-only
# stload at the gateway, and assert a clean run (exit 0 = zero transport
# errors), a 3-shard topology header in the report, and gateway /metrics
# per-route totals equal to the report's sent counts — the same
# accounting loop the single-node smoke closes, now across the fan-out.
cluster-smoke:
	$(GO) build -o bin/stgen ./cmd/stgen
	$(GO) build -o bin/stmine ./cmd/stmine
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stgate ./cmd/stgate
	$(GO) build -o bin/stload ./cmd/stload
	@set -e; \
	rm -rf $(CLUSTER_TMP); mkdir -p $(CLUSTER_TMP); \
	pids=""; trap 'kill $$pids 2>/dev/null || true; rm -rf $(CLUSTER_TMP)' EXIT; \
	./bin/stgen -kind topix -seed 1 -articles 0.4 -vocab 300 -tokens 8 > $(CLUSTER_TMP)/corpus.jsonl; \
	./bin/stmine -all -method all -shards 3 -corpus $(CLUSTER_TMP)/corpus.jsonl \
		-o $(CLUSTER_TMP)/corpus.bundle > /dev/null; \
	i=0; for port in 8096 8097 8098; do \
		./bin/stserve -corpus $(CLUSTER_TMP)/corpus.jsonl -addr 127.0.0.1:$$port \
			-snapshot $(CLUSTER_TMP)/corpus-shard$$i-of3.bundle & pids="$$pids $$!"; \
		i=$$((i+1)); \
	done; \
	for port in 8096 8097 8098; do \
		ok=0; for t in $$(seq 1 200); do \
			curl -sf http://127.0.0.1:$$port/v1/healthz > /dev/null 2>&1 && { ok=1; break; }; sleep 0.3; \
		done; \
		test $$ok = 1 || { echo "cluster-smoke: member on $$port never became healthy" >&2; exit 1; }; \
	done; \
	./bin/stgate -addr $(CLUSTER_GATE) -shard http://127.0.0.1:8096 \
		-shard http://127.0.0.1:8097 -shard http://127.0.0.1:8098 & pids="$$pids $$!"; \
	ok=0; for t in $$(seq 1 200); do \
		curl -sf http://$(CLUSTER_GATE)/v1/healthz > /dev/null 2>&1 && { ok=1; break; }; sleep 0.3; \
	done; \
	test $$ok = 1 || { echo "cluster-smoke: gateway never assembled the cluster" >&2; exit 1; }; \
	./bin/stload -target http://$(CLUSTER_GATE) -requests 200 -seed 1 -concurrency 4 \
		-write-fraction 0 -vocab 300 > $(CLUSTER_TMP)/report.json; \
	grep -q '"shards": 3' $(CLUSTER_TMP)/report.json || \
		{ echo "cluster-smoke: report topology does not say 3 shards" >&2; exit 1; }; \
	curl -sf http://$(CLUSTER_GATE)/metrics | awk -F'"' \
		'index($$0, "stgate_http_requests_total{route=") == 1 \
			&& $$2 != "GET /v1/healthz" && $$2 != "GET /metrics" \
			{ k = split($$0, a, " "); sum[$$2] += a[k] } \
		END { for (r in sum) printf "%s\t%d\n", r, sum[r] }' \
		| sort > $(CLUSTER_TMP)/served; \
	awk -F'"' '/"ops_by_route"/ { f = 1; next } \
		f && /^[ \t]*\},?$$/ { f = 0 } \
		f && NF >= 3 { c = $$3; gsub(/[^0-9]/, "", c); n[$$2] = c } \
		END { n["GET /v1/stats"] += 1; for (r in n) printf "%s\t%d\n", r, n[r] }' \
		$(CLUSTER_TMP)/report.json | sort > $(CLUSTER_TMP)/sent; \
	diff -u $(CLUSTER_TMP)/sent $(CLUSTER_TMP)/served || \
		{ echo "cluster-smoke: gateway /metrics disagrees with the stload report (sent vs served above)" >&2; exit 1; }; \
	echo "cluster-smoke: 3-shard scatter-gather clean — gateway counters match the stload report"

# End-to-end alerting smoke over the real binaries: boot stserve with
# ingestion and subscriptions armed, register a standing query whose
# webhook points at an stsink receiver, push event bursts through
# stload, and assert the sink logged >= 1 alert batch AND the server's
# /metrics delivery counters agree with the sink's ledger — every alert
# the server claims delivered landed in the file, none dropped. The
# matcher/registry semantics are proven by the oracle tests; this step
# proves the shipped binaries wire subscribe -> ingest -> re-mine ->
# match -> webhook end to end.
alert-smoke:
	$(GO) build -o bin/stgen ./cmd/stgen
	$(GO) build -o bin/stserve ./cmd/stserve
	$(GO) build -o bin/stload ./cmd/stload
	$(GO) build -o bin/stsink ./cmd/stsink
	@set -e; \
	rm -rf $(ALERT_TMP); mkdir -p $(ALERT_TMP); \
	pids=""; trap 'kill $$pids 2>/dev/null || true; rm -rf $(ALERT_TMP)' EXIT; \
	./bin/stgen -kind topix -seed 1 -articles 0.4 -vocab 300 -tokens 8 > $(ALERT_TMP)/corpus.jsonl; \
	./bin/stsink -addr $(ALERT_SINK) -out $(ALERT_TMP)/alerts.jsonl & pids="$$pids $$!"; \
	./bin/stserve -corpus $(ALERT_TMP)/corpus.jsonl -addr $(ALERT_ADDR) \
		-method stlocal -ingest -subscriptions -webhook-allow-private & pids="$$pids $$!"; \
	for url in http://$(ALERT_SINK) http://$(ALERT_ADDR); do \
		ok=0; for t in $$(seq 1 200); do \
			curl -sf $$url/v1/healthz > /dev/null 2>&1 && { ok=1; break; }; sleep 0.3; \
		done; \
		test $$ok = 1 || { echo "alert-smoke: $$url never became healthy" >&2; exit 1; }; \
	done; \
	curl -sf -X POST -H 'Content-Type: application/json' \
		-d '{"owner":"smoke","terms":["earthquake","rescue"],"webhook":"http://$(ALERT_SINK)/hook"}' \
		http://$(ALERT_ADDR)/v1/subscriptions > /dev/null \
		|| { echo "alert-smoke: subscription registration failed" >&2; exit 1; }; \
	./bin/stload -target http://$(ALERT_ADDR) -requests 120 -seed 1 -concurrency 4 \
		-write-fraction 1 -vocab 300 > $(ALERT_TMP)/load.json; \
	ok=0; for t in $$(seq 1 200); do \
		batches=$$(grep -c '"subscription_id"' $(ALERT_TMP)/alerts.jsonl 2>/dev/null || true); \
		sunk=$$(grep -o '"count":[0-9]*' $(ALERT_TMP)/alerts.jsonl 2>/dev/null \
			| awk -F: '{ s += $$2 } END { print s + 0 }'); \
		delivered=$$(curl -sf http://$(ALERT_ADDR)/metrics \
			| awk '/^stserve_alerts_delivered_total /{ print $$2 }'); \
		test "$${batches:-0}" -ge 1 && test "$$delivered" = "$$sunk" && { ok=1; break; }; \
		sleep 0.3; \
	done; \
	test $$ok = 1 || { echo "alert-smoke: sink saw $${batches:-0} batches ($$sunk alerts), server claims $$delivered delivered" >&2; exit 1; }; \
	curl -sf http://$(ALERT_ADDR)/metrics | grep -q '^stserve_alerts_dropped_total 0$$' \
		|| { echo "alert-smoke: server dropped deliveries" >&2; exit 1; }; \
	echo "alert-smoke: webhook path live — $$batches batches, $$sunk alerts delivered, /metrics agrees"

# Streaming-connector crash smoke over the real binaries: stgen -follow
# appends a seed-deterministic feed while stserve tails it into the WAL,
# kill -9 lands mid-stream, and the reboot must converge on EXACTLY
# base + feed documents — the tailer's checkpoint dedupes what the WAL
# already replayed, so a gap or a duplicate both fail the equality. The
# connector tests prove checksum-identical recovery at every cut point;
# this proves the shipped binaries wire feed -> tail -> WAL -> re-mine.
connector-smoke:
	$(GO) build -o bin/stgen ./cmd/stgen
	$(GO) build -o bin/stserve ./cmd/stserve
	@set -e; \
	rm -rf $(CONN_TMP); mkdir -p $(CONN_TMP); \
	pids=""; trap 'kill -9 $$pids 2>/dev/null || true; rm -rf $(CONN_TMP)' EXIT; \
	./bin/stgen -kind topix -seed 1 -articles 0.1 -vocab 300 -tokens 8 > $(CONN_TMP)/corpus.jsonl; \
	./bin/stgen -kind topix -seed 2 -articles 0.05 -vocab 300 -tokens 8 \
		-follow -rate 100 -o $(CONN_TMP)/feed.jsonl 2> /dev/null & genpid=$$!; pids="$$pids $$genpid"; \
	boot() { \
		./bin/stserve -corpus $(CONN_TMP)/corpus.jsonl -addr $(CONN_ADDR) -method stlocal \
			-tail $(CONN_TMP)/feed.jsonl -wal-dir $(CONN_TMP)/wal & pid=$$!; pids="$$pids $$pid"; \
		for i in $$(seq 1 200); do \
			curl -sf http://$(CONN_ADDR)/v1/healthz > /dev/null 2>&1 && return 0; sleep 0.3; \
		done; \
		echo "connector-smoke: stserve did not become healthy" >&2; return 1; \
	}; \
	docs() { curl -sf http://$(CONN_ADDR)/metrics | awk '/^stserve_collection_docs /{ print $$2 }'; }; \
	base=$$(($$(wc -l < $(CONN_TMP)/corpus.jsonl) - 1)); \
	boot; \
	ok=0; for t in $$(seq 1 300); do \
		d=$$(docs); test -n "$$d" && test "$$d" -gt "$$base" && { ok=1; break; }; sleep 0.1; \
	done; \
	test $$ok = 1 || { echo "connector-smoke: tailer never ingested anything" >&2; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	kill -0 $$genpid 2>/dev/null || \
		{ echo "connector-smoke: feed already complete at the kill; slow -rate or grow -articles" >&2; exit 1; }; \
	boot; \
	wait $$genpid || true; \
	expect=$$(($$base + $$(wc -l < $(CONN_TMP)/feed.jsonl) - 1)); \
	ok=0; for t in $$(seq 1 300); do \
		d=$$(docs); test "$$d" = "$$expect" && { ok=1; break; }; sleep 0.1; \
	done; \
	test $$ok = 1 || { echo "connector-smoke: $$d docs after reboot, want exactly $$expect (zero gaps, zero dupes)" >&2; exit 1; }; \
	sleep 1; d=$$(docs); \
	test "$$d" = "$$expect" || { echo "connector-smoke: count crept past $$expect to $$d: duplicates" >&2; exit 1; }; \
	curl -sf http://$(CONN_ADDR)/metrics | grep -q '^stserve_connector_docs_total{connector="tail:' \
		|| { echo "connector-smoke: per-connector metrics missing from /metrics" >&2; exit 1; }; \
	curl -sf http://$(CONN_ADDR)/v1/stats | grep -q '"connectors"' \
		|| { echo "connector-smoke: /v1/stats has no connectors block" >&2; exit 1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	echo "connector-smoke: kill -9 survived — $$expect documents tailed, zero gaps, zero dupes"
