# Tier-1 verification plus the race/determinism and benchmark suites.
#
#   make            # build + full tests (tier-1)
#   make test-short # seconds-fast subset (heavy corpus reproductions skipped)
#   make race       # concurrency suite under the race detector
#   make bench      # all benchmarks, including the MineAll speedup pair
#   make verify     # tier-1 + race: what CI should run

GO ?= go

.PHONY: all build test test-short race bench verify

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race: build
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestMineAll|TestConcurrent|TestSearchAnswers|TestPatternIndex' .

bench: build
	$(GO) test -bench=. -benchmem -run '^$$' .

verify: test race
