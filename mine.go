package stburst

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"stburst/internal/index"
	"stburst/internal/search"
)

// Kind identifies a pattern type and the miner that produces it. The
// zero value is KindAny, so a Query that never mentions a kind fans out
// to every index resident in a Store.
type Kind int

const (
	// KindAny selects every resident kind: Store.Query fans the request
	// out to each index it holds and merges the hits. It is the zero
	// value, never a kind an index can store.
	KindAny Kind = iota
	// KindRegional selects STLocal regional windows (§4).
	KindRegional
	// KindCombinatorial selects STComb combinatorial patterns (§3).
	KindCombinatorial
	// KindTemporal selects merged-stream temporal intervals (the TB
	// comparison system of §6.3).
	KindTemporal
)

// Kinds lists the concrete pattern kinds in canonical (regional,
// combinatorial, temporal) order — the fan-out and serialization order
// used by Store and the bundle format.
func Kinds() []Kind { return []Kind{KindRegional, KindCombinatorial, KindTemporal} }

// patternKind maps a concrete kind onto the internal pattern-set kind.
// It reports false for KindAny and out-of-range values, which name no
// single pattern type.
func (k Kind) patternKind() (index.PatternKind, bool) {
	switch k {
	case KindRegional:
		return index.KindRegional, true
	case KindCombinatorial:
		return index.KindCombinatorial, true
	case KindTemporal:
		return index.KindTemporal, true
	}
	return 0, false
}

// kindOf lifts an internal pattern-set kind back into the public enum.
func kindOf(pk index.PatternKind) Kind {
	switch pk {
	case index.KindRegional:
		return KindRegional
	case index.KindCombinatorial:
		return KindCombinatorial
	case index.KindTemporal:
		return KindTemporal
	}
	return KindAny
}

// String returns the kind's name: "any", "regional", "combinatorial" or
// "temporal".
func (k Kind) String() string {
	if k == KindAny {
		return "any"
	}
	pk, ok := k.patternKind()
	if !ok {
		return "unknown"
	}
	return pk.String()
}

// ParseKind resolves a kind name, accepting the pattern names (regional,
// combinatorial, temporal), the paper's miner names (stlocal, stcomb,
// tb) the CLI tools historically used, and "any" for the Store fan-out.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "any":
		return KindAny, nil
	case "regional", "stlocal":
		return KindRegional, nil
	case "combinatorial", "stcomb":
		return KindCombinatorial, nil
	case "temporal", "tb":
		return KindTemporal, nil
	}
	return 0, fmt.Errorf("stburst: unknown pattern kind %q (want any, regional/stlocal, combinatorial/stcomb or temporal/tb)", s)
}

// MarshalJSON encodes the kind as its name, the representation the /v1
// HTTP surface speaks.
func (k Kind) MarshalJSON() ([]byte, error) {
	if _, ok := k.patternKind(); !ok && k != KindAny {
		return nil, fmt.Errorf("stburst: cannot encode unknown pattern kind %d", int(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name as accepted by ParseKind. The empty
// string is KindAny, matching the zero value of an absent field.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("stburst: pattern kind must be a JSON string: %w", err)
	}
	if s == "" {
		*k = KindAny
		return nil
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// MineOptions configures Collection.Mine. The zero value (or a nil
// pointer) mines with the paper's defaults on one worker per CPU.
// Options are assembled functional-style with NewMineOptions, or built
// literally.
type MineOptions struct {
	// Parallelism is the mining worker count: < 1 means one worker per
	// CPU, 1 reproduces the sequential loop exactly, and every value
	// yields bit-identical output.
	Parallelism int
	// Regional tunes KindRegional mining; nil uses the paper's defaults.
	Regional *RegionalOptions
	// Combinatorial tunes KindCombinatorial mining; nil uses the paper's
	// defaults.
	Combinatorial *CombinatorialOptions
}

// MineOption mutates a MineOptions functional-style.
type MineOption func(*MineOptions)

// NewMineOptions assembles a MineOptions from functional options.
func NewMineOptions(opts ...MineOption) *MineOptions {
	mo := &MineOptions{}
	for _, o := range opts {
		o(mo)
	}
	return mo
}

// WithParallelism sets the mining worker count (< 1 means one worker per
// CPU).
func WithParallelism(n int) MineOption {
	return func(mo *MineOptions) { mo.Parallelism = n }
}

// WithRegional sets the STLocal options used by KindRegional mining.
func WithRegional(o *RegionalOptions) MineOption {
	return func(mo *MineOptions) { mo.Regional = o }
}

// WithCombinatorial sets the STComb options used by KindCombinatorial
// mining.
func WithCombinatorial(o *CombinatorialOptions) MineOption {
	return func(mo *MineOptions) { mo.Combinatorial = o }
}

// Mine mines patterns of the given kind for every term of the corpus and
// returns the resulting pattern index — the unified, cancellable entry
// point behind the MineAll* convenience methods. The vocabulary is fanned
// out across a bounded worker pool; any parallelism yields bit-identical
// output (each term is mined independently on a private miner). A
// cancelled context stops dispatching further terms and returns ctx.Err()
// promptly — mining already in flight finishes its current term first. A
// nil opts mines with the paper's defaults on one worker per CPU.
func (c *Collection) Mine(ctx context.Context, kind Kind, opts *MineOptions) (*PatternIndex, error) {
	if opts == nil {
		opts = &MineOptions{}
	}
	switch kind {
	case KindRegional:
		windows, err := search.MineWindowsParCtx(ctx, c.col, opts.Regional.coreOptions(), opts.Parallelism)
		if err != nil {
			return nil, err
		}
		return &PatternIndex{c: c, set: index.NewWindowSet(windows)}, nil
	case KindCombinatorial:
		patterns, err := search.MineCombPatternsParCtx(ctx, c.col, opts.Combinatorial.coreOptions(), opts.Parallelism)
		if err != nil {
			return nil, err
		}
		return &PatternIndex{c: c, set: index.NewCombSet(patterns)}, nil
	case KindTemporal:
		temporal, err := search.MineTemporalParCtx(ctx, c.col, nil, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		return &PatternIndex{c: c, set: index.NewTemporalSet(temporal)}, nil
	}
	return nil, fmt.Errorf("stburst: Mine needs a concrete pattern kind, got %v (use MineStore to mine every kind)", kind)
}

// MineStore mines all three pattern kinds in one pass over a single
// shared worker pool — the vocabulary is fanned out once with a
// (term, kind) work list instead of three sequential sweeps — and
// returns a Store holding the three resulting indexes. Parallelism and
// cancellation semantics match Mine; any worker count yields
// bit-identical indexes. A nil opts mines with the paper's defaults on
// one worker per CPU.
func (c *Collection) MineStore(ctx context.Context, opts *MineOptions) (*Store, error) {
	if opts == nil {
		opts = &MineOptions{}
	}
	windows, combs, temporal, err := search.MineAllKindsParCtx(ctx, c.col,
		opts.Regional.coreOptions(), opts.Combinatorial.coreOptions(), nil, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	s := NewStore(c)
	// Record the mining options so Store.Ingest re-mines dirty terms
	// with exactly the parameters the resident indexes were mined with.
	s.SetMineOptions(opts)
	for _, ix := range []*PatternIndex{
		{c: c, set: index.NewWindowSet(windows)},
		{c: c, set: index.NewCombSet(combs)},
		{c: c, set: index.NewTemporalSet(temporal)},
	} {
		if _, err := s.Swap(ix.PatternKind(), ix); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// PatternIndex is a cached, query-ready store of spatiotemporal patterns
// mined across the entire corpus vocabulary, keyed by term. It is built
// once by the batch miners (MineAllRegional, MineAllCombinatorial,
// MineAllTemporal) and consulted afterwards by both the per-term accessors
// and the search engine, so repeated queries never re-mine the corpus.
//
// A PatternIndex is immutable after construction and safe for concurrent
// use from any number of goroutines.
type PatternIndex struct {
	c   *Collection
	set *index.PatternSet

	engOnce sync.Once
	eng     *Engine

	fpOnce sync.Once
	fp     string
}

// MineAllRegional mines STLocal regional patterns for every term of the
// corpus and returns the resulting pattern index: Mine with KindRegional,
// a background context, and positional options. parallelism < 1 uses one
// worker per CPU, 1 reproduces the sequential loop exactly, and any value
// yields bit-identical output (each term is mined independently on a
// private miner whose baselines come from the options' factory). A nil
// opts uses the paper's defaults.
func (c *Collection) MineAllRegional(opts *RegionalOptions, parallelism int) *PatternIndex {
	ix, _ := c.Mine(context.Background(), KindRegional,
		&MineOptions{Regional: opts, Parallelism: parallelism})
	return ix
}

// MineAllCombinatorial mines STComb combinatorial patterns for every term
// of the corpus and returns the resulting pattern index: Mine with
// KindCombinatorial and a background context. Parallelism semantics match
// MineAllRegional. A nil opts uses the paper's defaults.
func (c *Collection) MineAllCombinatorial(opts *CombinatorialOptions, parallelism int) *PatternIndex {
	ix, _ := c.Mine(context.Background(), KindCombinatorial,
		&MineOptions{Combinatorial: opts, Parallelism: parallelism})
	return ix
}

// MineAllTemporal extracts every term's bursty temporal intervals on the
// merged stream (the temporal-only TB system of §6.3) and returns the
// resulting pattern index: Mine with KindTemporal and a background
// context. Parallelism semantics match MineAllRegional.
func (c *Collection) MineAllTemporal(parallelism int) *PatternIndex {
	ix, _ := c.Mine(context.Background(), KindTemporal,
		&MineOptions{Parallelism: parallelism})
	return ix
}

// Kind names the pattern type the index stores: "regional",
// "combinatorial" or "temporal".
func (ix *PatternIndex) Kind() string { return ix.set.Kind().String() }

// PatternKind returns the typed pattern kind the index stores — always
// a concrete kind, never KindAny.
func (ix *PatternIndex) PatternKind() Kind { return kindOf(ix.set.Kind()) }

// Terms returns every term holding at least one pattern, in ascending
// interned-ID (i.e. first-seen) order.
func (ix *PatternIndex) Terms() []string {
	ids := ix.set.Terms()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ix.c.col.Dict().Term(id)
	}
	return out
}

// NumTerms returns the number of terms holding at least one pattern.
func (ix *PatternIndex) NumTerms() int { return ix.set.NumTerms() }

// NumPatterns returns the total number of stored patterns.
func (ix *PatternIndex) NumPatterns() int { return ix.set.NumPatterns() }

// RegionalPatterns returns the stored regional patterns of a term, exactly
// as Collection.RegionalPatterns would mine them. It is nil for terms
// without patterns and for indexes of other kinds. The slice aliases the
// index's shared storage (unlike the per-term miner, which returns a
// fresh slice): callers must not modify it — copy first to sort or edit.
func (ix *PatternIndex) RegionalPatterns(term string) []RegionalPattern {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Windows(id)
}

// CombinatorialPatterns returns the stored combinatorial patterns of a
// term, exactly as Collection.CombinatorialPatterns would mine them. It is
// nil for terms without patterns and for indexes of other kinds. The
// slice aliases the index's shared storage; callers must not modify it.
func (ix *PatternIndex) CombinatorialPatterns(term string) []CombinatorialPattern {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Combs(id)
}

// TemporalBursts returns the stored merged-stream bursty intervals of a
// term, exactly as Collection.TemporalBursts would mine them. It is nil
// for terms without intervals and for indexes of other kinds. The slice
// aliases the index's shared storage; callers must not modify it.
func (ix *PatternIndex) TemporalBursts(term string) []TemporalInterval {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Temporal(id)
}

// Fingerprint returns a hex SHA-256 digest over a canonical serialization
// of the whole index. Equal fingerprints mean byte-identical pattern
// content; the concurrency suite uses it to assert determinism across
// worker counts and repeated runs. The digest is computed on first use
// and cached — the index is immutable, and serving paths (/v1/indexes,
// /v1/stats) consult it on every poll.
func (ix *PatternIndex) Fingerprint() string {
	ix.fpOnce.Do(func() { ix.fp = ix.set.Fingerprint() })
	return ix.fp
}

// Save serializes the index to w in the versioned binary snapshot format
// (see DESIGN.md for the layout): the patterns of every term, the term
// strings themselves, and a canonical SHA-256 fingerprint footer that
// LoadPatternIndex verifies on the way back in. Snapshots are the
// mine-once/serve-many pipeline: mine the corpus with MineAll*, Save the
// index, and every serving process loads it in milliseconds instead of
// re-mining the vocabulary at boot.
func (ix *PatternIndex) Save(w io.Writer) error {
	return index.WriteSnapshot(w, ix.set, ix.c.col.Dict().Term)
}

// SaveFile saves the index as a snapshot file, atomically: the snapshot
// is written to a temp file in the destination directory and renamed
// over the target, so an interrupted save never leaves a truncated file.
func (ix *PatternIndex) SaveFile(path string) error {
	return index.WriteSnapshotFile(path, ix.set, ix.c.col.Dict().Term)
}

// LoadPatternIndex reads a snapshot written by PatternIndex.Save and
// attaches it to a collection holding the same corpus. The snapshot's
// integrity is verified against its embedded canonical fingerprint —
// truncated or corrupted input is rejected with an error — and every
// stored term is re-interned through the collection's dictionary, so the
// loaded index answers lookups and searches exactly like the freshly
// mined one. A snapshot mentioning a term the collection has never seen
// is an error: it was mined from a different corpus.
func LoadPatternIndex(r io.Reader, c *Collection) (*PatternIndex, error) {
	snap, err := index.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("stburst: loading pattern index: %w", err)
	}
	ix, err := attachSnapshot(snap, c)
	if err != nil {
		return nil, fmt.Errorf("stburst: loading pattern index: %w", err)
	}
	return ix, nil
}

// attachSnapshot re-interns a decoded snapshot into the collection's
// dictionary and validates it against the collection's shape — the
// shared back half of LoadPatternIndex and LoadStore.
func attachSnapshot(snap *index.Snapshot, c *Collection) (*PatternIndex, error) {
	set, err := snap.Remap(c.col.Dict().Lookup)
	if err != nil {
		return nil, err
	}
	// Vocabulary matching is not enough: a snapshot from a structurally
	// different corpus (fewer streams, shorter timeline) would pass the
	// checks above and panic later on the serving path.
	if err := set.Validate(c.NumStreams(), c.Timeline()); err != nil {
		return nil, fmt.Errorf("snapshot does not fit the collection: %w", err)
	}
	return &PatternIndex{c: c, set: set}, nil
}

// Engine returns a search engine answering queries from the stored
// patterns. The engine is built on first use and cached; no call ever
// re-mines the corpus. It is safe to call concurrently.
func (ix *PatternIndex) Engine() *Engine {
	ix.engOnce.Do(func() {
		ix.eng = &Engine{c: ix.c, eng: search.BuildFromPatterns(ix.c.col, ix.set), kind: ix.PatternKind()}
	})
	return ix.eng
}

// Search retrieves the top-k documents for a free-text query against the
// stored patterns (Eq. 10/11), building the cached engine on first use.
func (ix *PatternIndex) Search(query string, k int) []Hit {
	return ix.Engine().Search(query, k)
}
