package stburst

import (
	"sync"

	"stburst/internal/index"
	"stburst/internal/search"
)

// PatternIndex is a cached, query-ready store of spatiotemporal patterns
// mined across the entire corpus vocabulary, keyed by term. It is built
// once by the batch miners (MineAllRegional, MineAllCombinatorial,
// MineAllTemporal) and consulted afterwards by both the per-term accessors
// and the search engine, so repeated queries never re-mine the corpus.
//
// A PatternIndex is immutable after construction and safe for concurrent
// use from any number of goroutines.
type PatternIndex struct {
	c   *Collection
	set *index.PatternSet

	engOnce sync.Once
	eng     *Engine
}

// MineAllRegional mines STLocal regional patterns for every term of the
// corpus and returns the resulting pattern index. The vocabulary is fanned
// out across a bounded worker pool: parallelism < 1 uses one worker per
// CPU, 1 reproduces the sequential loop exactly, and any value yields
// bit-identical output (each term is mined independently on a private
// miner whose baselines come from the options' factory). A nil opts uses
// the paper's defaults.
func (c *Collection) MineAllRegional(opts *RegionalOptions, parallelism int) *PatternIndex {
	windows := search.MineWindowsPar(c.col, opts.coreOptions(), parallelism)
	return &PatternIndex{c: c, set: index.NewWindowSet(windows)}
}

// MineAllCombinatorial mines STComb combinatorial patterns for every term
// of the corpus and returns the resulting pattern index. Parallelism
// semantics match MineAllRegional. A nil opts uses the paper's defaults.
func (c *Collection) MineAllCombinatorial(opts *CombinatorialOptions, parallelism int) *PatternIndex {
	patterns := search.MineCombPatternsPar(c.col, opts.coreOptions(), parallelism)
	return &PatternIndex{c: c, set: index.NewCombSet(patterns)}
}

// MineAllTemporal extracts every term's bursty temporal intervals on the
// merged stream (the temporal-only TB system of §6.3) and returns the
// resulting pattern index. Parallelism semantics match MineAllRegional.
func (c *Collection) MineAllTemporal(parallelism int) *PatternIndex {
	temporal := search.MineTemporalPar(c.col, nil, parallelism)
	return &PatternIndex{c: c, set: index.NewTemporalSet(temporal)}
}

// Kind names the pattern type the index stores: "regional",
// "combinatorial" or "temporal".
func (ix *PatternIndex) Kind() string { return ix.set.Kind().String() }

// Terms returns every term holding at least one pattern, in ascending
// interned-ID (i.e. first-seen) order.
func (ix *PatternIndex) Terms() []string {
	ids := ix.set.Terms()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ix.c.col.Dict().Term(id)
	}
	return out
}

// NumTerms returns the number of terms holding at least one pattern.
func (ix *PatternIndex) NumTerms() int { return ix.set.NumTerms() }

// NumPatterns returns the total number of stored patterns.
func (ix *PatternIndex) NumPatterns() int { return ix.set.NumPatterns() }

// RegionalPatterns returns the stored regional patterns of a term, exactly
// as Collection.RegionalPatterns would mine them. It is nil for terms
// without patterns and for indexes of other kinds. The slice aliases the
// index's shared storage (unlike the per-term miner, which returns a
// fresh slice): callers must not modify it — copy first to sort or edit.
func (ix *PatternIndex) RegionalPatterns(term string) []RegionalPattern {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Windows(id)
}

// CombinatorialPatterns returns the stored combinatorial patterns of a
// term, exactly as Collection.CombinatorialPatterns would mine them. It is
// nil for terms without patterns and for indexes of other kinds. The
// slice aliases the index's shared storage; callers must not modify it.
func (ix *PatternIndex) CombinatorialPatterns(term string) []CombinatorialPattern {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Combs(id)
}

// TemporalBursts returns the stored merged-stream bursty intervals of a
// term, exactly as Collection.TemporalBursts would mine them. It is nil
// for terms without intervals and for indexes of other kinds. The slice
// aliases the index's shared storage; callers must not modify it.
func (ix *PatternIndex) TemporalBursts(term string) []TemporalInterval {
	id, ok := ix.c.col.Dict().Lookup(ix.c.normalize(term))
	if !ok {
		return nil
	}
	return ix.set.Temporal(id)
}

// Fingerprint returns a hex SHA-256 digest over a canonical serialization
// of the whole index. Equal fingerprints mean byte-identical pattern
// content; the concurrency suite uses it to assert determinism across
// worker counts and repeated runs.
func (ix *PatternIndex) Fingerprint() string { return ix.set.Fingerprint() }

// Engine returns a search engine answering queries from the stored
// patterns. The engine is built on first use and cached; no call ever
// re-mines the corpus. It is safe to call concurrently.
func (ix *PatternIndex) Engine() *Engine {
	ix.engOnce.Do(func() {
		ix.eng = &Engine{c: ix.c, eng: search.BuildFromPatterns(ix.c.col, ix.set)}
	})
	return ix.eng
}

// Search retrieves the top-k documents for a free-text query against the
// stored patterns (Eq. 10/11), building the cached engine on first use.
func (ix *PatternIndex) Search(query string, k int) []Hit {
	return ix.Engine().Search(query, k)
}
