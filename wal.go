package stburst

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stburst/internal/stream"
	"stburst/internal/wal"
)

// WALSync selects when logged batches reach stable storage.
type WALSync int

const (
	// WALSyncAlways fsyncs every batch before Ingest acknowledges it —
	// the default, and the only policy under which "acknowledged" means
	// "survives kill -9".
	WALSyncAlways WALSync = iota
	// WALSyncNever leaves flushing to the OS: faster, but a crash may
	// lose — or leave as unrecoverable corruption — batches that were
	// already acknowledged.
	WALSyncNever
)

// walConfig collects OpenWAL's options: the log's own knobs plus the
// save-time pruning policy, which lives above the log (it couples the
// log to the corpus file).
type walConfig struct {
	opts      wal.Options
	prunePath string
}

// WALOption configures OpenWAL functional-style.
type WALOption func(*walConfig)

// WithWALSync sets the fsync policy (default WALSyncAlways).
func WithWALSync(p WALSync) WALOption {
	return func(c *walConfig) {
		if p == WALSyncNever {
			c.opts.Sync = wal.SyncNever
		} else {
			c.opts.Sync = wal.SyncAlways
		}
	}
}

// WithWALSegmentBytes sets the segment rotation threshold (default
// 64 MiB). Values <= 0 keep the default.
func WithWALSegmentBytes(n int64) WALOption {
	return func(c *walConfig) { c.opts.SegmentBytes = n }
}

// WithWALPrune arms save-time log pruning, off by default. After each
// successful Store.Save/SaveFile by the store this log is attached to,
// the sealed segments' documents are absorbed into the corpus JSONL
// file at corpusPath (atomically: the file is copied, appended and
// renamed, so a crash leaves either the old corpus or the new one) and
// the sealed segments are then deleted — the log stays bounded under
// sustained ingestion instead of growing forever.
//
// corpusPath must be the very corpus file the store's collection was
// loaded from: absorption appends exactly the logged batches, in log
// order, and refuses (without touching anything) when the batches do
// not abut the file's document count. A reboot then recovers
// bit-identically from the absorbed corpus plus the bundle plus
// whatever the log still holds — loading an absorbed document interns
// its terms exactly as the live Ingest did, and ReplayWAL skips batches
// whose documents the corpus already contains (a crash between the
// absorb and the prune leaves both copies; replaying the duplicate
// would corrupt the collection).
func WithWALPrune(corpusPath string) WALOption {
	return func(c *walConfig) { c.prunePath = corpusPath }
}

// WAL is an open write-ahead log for live ingestion. The boot sequence
// is:
//
//	w, _ := stburst.OpenWAL(dir)          // scan, truncate torn tail
//	c, _ := stburst.LoadCorpus(f)         // rebuild the corpus
//	c.ReplayWAL(ctx, w)                   // re-append the logged batches
//	store, _ := stburst.LoadStore(b, c)   // or MineStore / Swap
//	store.AttachWAL(ctx, w)               // re-mine what the bundle
//	                                      // misses, arm logging
//
// Replay must run before indexes are loaded or mined: logged batches
// may have interned new vocabulary the indexes reference. After
// AttachWAL, every Store.Ingest batch is fsync'd to the log before it
// applies, and a successful Store.Save rotates the log's segments.
//
// Close the WAL only after the store has stopped ingesting (in a
// server: after the HTTP listener has drained and the Ingester is
// closed).
type WAL struct {
	mu        sync.Mutex
	l         *wal.Log
	pending   []wal.Batch // scanned at open, consumed by ReplayWAL
	replayed  []replayedBatch
	replayCol *stream.Collection // guard: attach only to the replayed collection
	docs      int                // documents across replayed batches
	attached  bool
	prunePath string // corpus file for save-time absorption ("" = rotate only)
}

// replayedBatch is what AttachWAL needs from each replayed frame: its
// pre-batch generation (to tell whether a loaded bundle already mined
// it) and the dirty terms its append produced.
type replayedBatch struct {
	seq    uint64
	preGen uint64
	dirty  []int
}

// OpenWAL opens (creating if necessary) the write-ahead log in dir and
// scans it: a torn tail from a crashed write is truncated away, while
// mid-log corruption, a sequence gap or a duplicate is a hard error —
// under the default fsync policy those mean the disk lost acknowledged
// data, and silently skipping it would quietly un-acknowledge batches.
func OpenWAL(dir string, opts ...WALOption) (*WAL, error) {
	var cfg walConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	l, pending, err := wal.Open(dir, cfg.opts)
	if err != nil {
		return nil, fmt.Errorf("stburst: opening wal: %w", err)
	}
	return &WAL{l: l, pending: pending, prunePath: cfg.prunePath}, nil
}

// Pending returns the number of scanned batches not yet replayed.
func (w *WAL) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// LastSeq returns the sequence number of the log's most recent intact
// frame (0 when the log has never held one).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.l == nil {
		return 0
	}
	return w.l.Stats().LastSeq
}

// Close syncs and closes the log. Close only after ingestion has
// stopped: an attached store's Ingest fails once the log is closed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.l == nil {
		return nil
	}
	err := w.l.Close()
	w.l = nil
	return err
}

// ReplayResult reports one boot-time WAL replay into a collection.
type ReplayResult struct {
	// Batches is the number of logged batches re-appended.
	Batches int
	// Docs is the number of documents across them.
	Docs int
	// Skipped is the number of logged batches whose documents the
	// loaded corpus already contained and that were therefore not
	// re-appended — a save with pruning enabled (WithWALPrune) absorbed
	// them into the corpus file but crashed before deleting their
	// segments.
	Skipped int
}

// ReplayWAL re-appends every batch the log holds, in sequence order,
// through the same deterministic Append path live ingestion uses — so
// the replayed collection is bit-identical (Checksum-equal) to the
// pre-crash one. It must run after the corpus is loaded and BEFORE
// indexes are loaded or mined: logged batches may intern vocabulary
// the indexes reference, and a bundle load against the shorter
// pre-replay collection would reject it.
//
// Each frame's recorded base document count must match the collection
// exactly — a mismatch means the log belongs to a different corpus (or
// replay ran twice) and is a hard error: appending anyway would assign
// the wrong document IDs to every replayed document. The one exception
// is a batch whose documents the collection provably already holds in
// full (its recorded base plus its own length is at most the corpus's
// load-time size): a save with WithWALPrune absorbed it into the corpus
// file but crashed before the prune deleted its segment, and replaying
// the duplicate would corrupt the collection — it is skipped instead
// (ReplayResult.Skipped).
func (c *Collection) ReplayWAL(ctx context.Context, w *WAL) (ReplayResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return ReplayResult{}, err
	}
	if w.attached {
		return ReplayResult{}, errors.New("stburst: wal is already attached to a store")
	}
	if w.replayCol != nil {
		return ReplayResult{}, errors.New("stburst: wal was already replayed")
	}
	var res ReplayResult
	for _, b := range w.pending {
		if have := uint64(c.col.NumDocs()); b.BaseDocs+uint64(len(b.Docs)) <= have && len(b.Docs) > 0 {
			// Fully absorbed into the corpus by a pre-crash prune: the
			// loaded collection already holds these documents, mined into
			// the bundle saved alongside the absorption.
			res.Skipped++
			continue
		}
		if uint64(c.col.NumDocs()) != b.BaseDocs {
			return res, fmt.Errorf(
				"stburst: wal batch %d was logged at document count %d but the collection holds %d — the log belongs to a different corpus",
				b.Seq, b.BaseDocs, c.col.NumDocs())
		}
		_, dirty, err := c.col.Append(b.Docs)
		if err != nil {
			return res, fmt.Errorf("stburst: replaying wal batch %d: %w", b.Seq, err)
		}
		w.replayed = append(w.replayed, replayedBatch{seq: b.Seq, preGen: b.PreGen, dirty: dirty})
		res.Batches++
		res.Docs += len(b.Docs)
	}
	w.replayCol = c.col
	w.docs = res.Docs
	w.pending = nil
	return res, nil
}

// AttachResult reports one AttachWAL: what the replay had re-appended,
// what the attach re-mined, and the restored generation.
type AttachResult struct {
	// Batches and Docs echo the replay that preceded the attach.
	Batches int
	Docs    int
	// DirtyTerms is the number of distinct terms re-mined — only those
	// from batches the loaded indexes had not yet absorbed (a batch
	// logged before the bundle's generation is already mined into it).
	DirtyTerms int
	// Generation is the store generation after the attach: the
	// pre-crash generation, restored.
	Generation uint64
}

// WALStats is a point-in-time summary of a store's attached log.
type WALStats struct {
	// LastSeq is the sequence number of the most recent logged batch.
	LastSeq uint64
	// Batches is the number of frames across all segment files.
	Batches int
	// Segments is the number of segment files.
	Segments int
	// Bytes is their total size.
	Bytes int64
	// Syncs counts fsyncs performed since the log opened.
	Syncs uint64
}

// AttachWAL completes recovery and arms logging: it re-mines the dirty
// terms of every replayed batch the resident indexes have not absorbed
// (those logged at or after the loaded bundle's generation — earlier
// batches were already mined into it), restores the pre-crash
// generation, and attaches the log so every subsequent Ingest logs
// before it applies. Call it after ReplayWAL and after the store's
// indexes are loaded or mined; set the store's mine options first
// (SetMineOptions) when the indexes were mined with non-defaults, or
// the boot-time re-mine would mix parameter settings.
//
// On a fresh log with nothing pending, AttachWAL may be called without
// a ReplayWAL (there was nothing to replay).
func (s *Store) AttachWAL(ctx context.Context, w *WAL) (AttachResult, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := ctx.Err(); err != nil {
		return AttachResult{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.attached {
		return AttachResult{}, errors.New("stburst: wal is already attached to a store")
	}
	if len(w.pending) > 0 {
		return AttachResult{}, errors.New("stburst: wal holds unreplayed batches; call Collection.ReplayWAL before loading or mining the store's indexes")
	}
	if w.replayCol != nil && w.replayCol != s.c.col {
		return AttachResult{}, errors.New("stburst: wal was replayed into a different collection than the store's")
	}
	if w.l == nil {
		return AttachResult{}, errors.New("stburst: wal is closed")
	}
	if s.wal.Load() != nil {
		return AttachResult{}, errors.New("stburst: store already has a wal attached")
	}

	loadedGen := s.Generation()
	res := AttachResult{Batches: len(w.replayed), Docs: w.docs}
	dirtySet := make(map[int]struct{})
	var lastPre uint64
	for _, b := range w.replayed {
		lastPre = b.preGen
		if b.preGen >= loadedGen {
			for _, t := range b.dirty {
				dirtySet[t] = struct{}{}
			}
		}
	}
	if len(dirtySet) > 0 {
		dirty := make([]int, 0, len(dirtySet))
		for t := range dirtySet {
			dirty = append(dirty, t)
		}
		sort.Ints(dirty)
		if _, err := s.refreshLocked(ctx, s.indexes.Load(), dirty); err != nil {
			return AttachResult{}, fmt.Errorf("stburst: re-mining wal-replayed terms: %w", err)
		}
		res.DirtyTerms = len(dirty)
	}
	// Restore the pre-crash generation: every logged batch bumped it by
	// one past its recorded pre-batch value, so the last batch pins it
	// exactly. The refresh above may have bumped it part of the way;
	// generations only ever move forward.
	if len(w.replayed) > 0 {
		if target := lastPre + 1; target > s.Generation() {
			s.gen.Store(target)
		}
	}
	w.attached = true
	s.walPrune = w.prunePath
	s.wal.Store(w.l)
	res.Generation = s.Generation()
	return res, nil
}

// WALStats returns a summary of the attached write-ahead log, and
// false when none is attached. It never blocks behind an in-flight
// ingest, so metric scrapes stay fast.
func (s *Store) WALStats() (WALStats, bool) {
	l := s.wal.Load()
	if l == nil {
		return WALStats{}, false
	}
	st := l.Stats()
	return WALStats{
		LastSeq:  st.LastSeq,
		Batches:  st.Batches,
		Segments: st.Segments,
		Bytes:    st.Bytes,
		Syncs:    st.Syncs,
	}, true
}
