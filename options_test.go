package stburst

// Coverage for the option-translation layer: the zero-value/nil paths and
// the baseline-parameter clamping branches of RegionalOptions.coreOptions
// and CombinatorialOptions.coreOptions.

import (
	"testing"

	"stburst/internal/burst"
	"stburst/internal/expect"
)

// sameBaseline drives two baselines with the same observation sequence
// and reports whether their predictions agree at every step.
func sameBaseline(a, b expect.Baseline, seq []float64) bool {
	for _, v := range seq {
		if a.Next(v) != b.Next(v) {
			return false
		}
	}
	return true
}

var probeSeq = []float64{5, 1, 2, 8, 3, 0, 4, 9, 2, 7, 6, 1}

func TestRegionalCoreOptionsNil(t *testing.T) {
	opts := (*RegionalOptions)(nil).coreOptions()
	if opts.Baseline != nil || opts.Finder != nil || opts.KeepDominated {
		t.Fatalf("nil options should map to the zero core options, got %+v", opts)
	}
}

func TestRegionalCoreOptionsZeroValue(t *testing.T) {
	opts := (&RegionalOptions{}).coreOptions()
	if opts.Baseline != nil {
		t.Fatal("running-mean default should leave Baseline nil (core installs it)")
	}
	if opts.Finder != nil {
		t.Fatal("Grid 0 should leave Finder nil (core installs the exact finder)")
	}
	if opts.KeepDominated {
		t.Fatal("zero value must not keep dominated windows")
	}
}

func TestRegionalCoreOptionsWindowMeanClamp(t *testing.T) {
	// BaselineParam < 1 clamps to a window of 4; expect.NewWindowMean(0)
	// would panic, so the clamp is what keeps the zero value usable.
	for _, param := range []float64{0, -2, 0.9} {
		o := &RegionalOptions{Baseline: BaselineWindowMean, BaselineParam: param}
		got := o.coreOptions().Baseline
		if got == nil {
			t.Fatalf("param %v: no baseline factory", param)
		}
		if !sameBaseline(got(), expect.NewWindowMean(4)(), probeSeq) {
			t.Fatalf("param %v should clamp to window 4", param)
		}
	}
	// In-range parameters pass through.
	o := &RegionalOptions{Baseline: BaselineWindowMean, BaselineParam: 3}
	if !sameBaseline(o.coreOptions().Baseline(), expect.NewWindowMean(3)(), probeSeq) {
		t.Fatal("param 3 should produce a window of 3")
	}
}

func TestRegionalCoreOptionsEWMAClamp(t *testing.T) {
	// Alpha outside (0, 1] clamps to 0.3 (expect.NewEWMA would panic).
	for _, param := range []float64{0, -1, 1.5} {
		o := &RegionalOptions{Baseline: BaselineEWMA, BaselineParam: param}
		if !sameBaseline(o.coreOptions().Baseline(), expect.NewEWMA(0.3)(), probeSeq) {
			t.Fatalf("param %v should clamp to alpha 0.3", param)
		}
	}
	o := &RegionalOptions{Baseline: BaselineEWMA, BaselineParam: 0.6}
	if !sameBaseline(o.coreOptions().Baseline(), expect.NewEWMA(0.6)(), probeSeq) {
		t.Fatal("param 0.6 should pass through")
	}
	// Alpha exactly 1 is valid (pure last-value predictor).
	o = &RegionalOptions{Baseline: BaselineEWMA, BaselineParam: 1}
	if !sameBaseline(o.coreOptions().Baseline(), expect.NewEWMA(1)(), probeSeq) {
		t.Fatal("param 1 should pass through")
	}
}

func TestRegionalCoreOptionsSeasonalClamp(t *testing.T) {
	// Period < 1 clamps to 7 (expect.NewSeasonal would panic).
	for _, param := range []float64{0, -5, 0.4} {
		o := &RegionalOptions{Baseline: BaselineSeasonal, BaselineParam: param}
		if !sameBaseline(o.coreOptions().Baseline(), expect.NewSeasonal(7)(), probeSeq) {
			t.Fatalf("param %v should clamp to period 7", param)
		}
	}
	o := &RegionalOptions{Baseline: BaselineSeasonal, BaselineParam: 3}
	if !sameBaseline(o.coreOptions().Baseline(), expect.NewSeasonal(3)(), probeSeq) {
		t.Fatal("param 3 should pass through")
	}
}

func TestRegionalCoreOptionsGridAndFlags(t *testing.T) {
	o := &RegionalOptions{Grid: 4, Bounds: Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, KeepDominated: true}
	opts := o.coreOptions()
	if opts.Finder == nil {
		t.Fatal("Grid > 0 should install a grid finder")
	}
	if !opts.KeepDominated {
		t.Fatal("KeepDominated should pass through")
	}
}

func TestCombinatorialCoreOptionsNil(t *testing.T) {
	opts := (*CombinatorialOptions)(nil).coreOptions()
	if opts.Detector != nil || opts.MaxPatterns != 0 {
		t.Fatalf("nil options should map to the zero core options, got %+v", opts)
	}
}

func TestCombinatorialCoreOptionsDefaults(t *testing.T) {
	opts := (&CombinatorialOptions{
		MinIntervalScore: 0.25,
		MinIntervalMass:  3,
		MaxPatterns:      7,
	}).coreOptions()
	det, ok := opts.Detector.(burst.Discrepancy)
	if !ok {
		t.Fatalf("default detector should be Discrepancy, got %T", opts.Detector)
	}
	if det.MinScore != 0.25 || det.MinMass != 3 {
		t.Fatalf("thresholds not passed through: %+v", det)
	}
	if opts.MaxPatterns != 7 {
		t.Fatalf("MaxPatterns = %d", opts.MaxPatterns)
	}
}

func TestCombinatorialCoreOptionsKleinberg(t *testing.T) {
	opts := (&CombinatorialOptions{
		Detector:       DetectorKleinberg,
		KleinbergS:     3,
		KleinbergGamma: 1.5,
	}).coreOptions()
	det, ok := opts.Detector.(burst.Kleinberg)
	if !ok {
		t.Fatalf("detector should be Kleinberg, got %T", opts.Detector)
	}
	if det.S != 3 || det.Gamma != 1.5 {
		t.Fatalf("Kleinberg params not passed through: %+v", det)
	}
	// Zero S/Gamma pass through here and are defaulted inside Detect.
	opts = (&CombinatorialOptions{Detector: DetectorKleinberg}).coreOptions()
	if det := opts.Detector.(burst.Kleinberg); det.S != 0 || det.Gamma != 0 {
		t.Fatalf("zero Kleinberg params should pass through: %+v", det)
	}
}

// TestNilOptionsEndToEnd exercises the nil-options path through the
// public per-term and batch miners: nil must reproduce the paper's
// defaults without panicking anywhere down the stack.
func TestNilOptionsEndToEnd(t *testing.T) {
	c := demoCollection(t)
	if len(c.RegionalPatterns("earthquake", nil)) == 0 {
		t.Fatal("nil regional options found nothing")
	}
	if len(c.CombinatorialPatterns("earthquake", nil)) == 0 {
		t.Fatal("nil combinatorial options found nothing")
	}
	if c.MineAllRegional(nil, 2).NumPatterns() == 0 {
		t.Fatal("nil batch regional options found nothing")
	}
	if c.MineAllCombinatorial(nil, 2).NumPatterns() == 0 {
		t.Fatal("nil batch combinatorial options found nothing")
	}
	// Clamped parameters survive a real mining pass end-to-end.
	clamped := &RegionalOptions{Baseline: BaselineWindowMean, BaselineParam: -1}
	if len(c.RegionalPatterns("earthquake", clamped)) == 0 {
		t.Fatal("clamped window-mean options found nothing")
	}
}
