package stburst

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"

	"stburst/internal/search"
	"stburst/internal/sub"
)

// Subscription is a standing query registered with a Store: the paper's
// push scenario. Where a Query asks "which documents are bursty about X
// here, now?" once, a Subscription asks it forever — after every Ingest
// the store intersects the freshly re-mined patterns of the batch's
// dirty terms against the predicate and emits an Alert per (term, kind)
// that matches.
//
// The predicate is the Query shape minus pagination: Terms (required,
// normalized through the collection's tokenizer on registration), an
// optional concrete Kind (KindAny watches every resident kind), optional
// Region/Time restricting pattern geometry exactly as in retrieval
// (regional windows intersect through their rectangle, combinatorial
// patterns through member-stream locations, temporal intervals through
// their timeframe only), and MinScore dropping patterns scoring below
// the threshold — here a pattern score, since a standing query watches
// patterns, not ranked documents.
//
// Webhook, when set, is the URL alert batches are POSTed to; a
// subscription without one is observable through the SSE feed only.
type Subscription struct {
	ID       uint64    `json:"id,omitempty"`
	Owner    string    `json:"owner,omitempty"`
	Terms    []string  `json:"terms"`
	Kind     Kind      `json:"kind,omitempty"`
	Region   *Rect     `json:"region,omitempty"`
	Time     *Timespan `json:"time,omitempty"`
	MinScore float64   `json:"min_score,omitempty"`
	Webhook  string    `json:"webhook,omitempty"`
}

// Validate checks the subscription's predicate by reusing Query.Validate
// on its Query shape (so the rules — non-inverted Region/Time, finite
// MinScore, a valid Kind — are literally the retrieval rules), then adds
// the subscription-only constraints: Terms is required (a standing query
// must name what it watches; free Text is a retrieval convenience, not a
// predicate), and Webhook, when present, must be an absolute http(s)
// URL.
func (s Subscription) Validate() error {
	if len(s.Terms) == 0 {
		return fmt.Errorf("stburst: subscription needs at least one term")
	}
	q := Query{Terms: s.Terms, Kind: s.Kind, Region: s.Region, Time: s.Time, MinScore: s.MinScore}
	if err := q.Validate(); err != nil {
		return err
	}
	if s.Webhook != "" {
		u, err := url.Parse(s.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("stburst: subscription webhook must be an absolute http(s) URL")
		}
	}
	return nil
}

// Alert reports one standing-query match: an Ingest re-mined one of the
// subscription's terms and at least one fresh pattern of the given kind
// satisfied the predicate. Patterns counts how many did; Score and
// [Start, End] summarize the best of them (highest score, first mined on
// ties). Generation is the store generation the matching index set was
// installed at — responses observed under it include the triggering
// batch.
type Alert struct {
	SubscriptionID uint64  `json:"subscription_id"`
	Owner          string  `json:"owner,omitempty"`
	Generation     uint64  `json:"generation"`
	Term           string  `json:"term"`
	Kind           Kind    `json:"kind"`
	Score          float64 `json:"score"`
	Patterns       int     `json:"patterns"`
	Start          int     `json:"start"`
	End            int     `json:"end"`
}

// AlertSink receives the alerts one Ingest produced, after its refreshed
// indexes were installed and the write lock released. Alerts are sorted
// by (subscription, term, kind) and a sink call carries every match of
// exactly one batch — the delivery layer's batching boundary. The sink
// runs on the ingesting goroutine: implementations must hand off
// quickly (the serving layer enqueues to a bounded dispatcher) and never
// call back into the store's write path.
type AlertSink func(alerts []Alert)

// SetAlertSink installs the function Ingest hands matched alerts to (nil
// disconnects). The store owns matching; the sink owns delivery.
func (s *Store) SetAlertSink(sink AlertSink) {
	if sink == nil {
		s.alertSink.Store(nil)
		return
	}
	s.alertSink.Store(&sink)
}

// ErrSubscriptionLimit reports that Subscribe was refused because the
// store already holds its limit's worth of standing queries (see
// SetSubscriptionLimit). Test with errors.Is; the HTTP layer maps it
// to 429 Too Many Requests.
var ErrSubscriptionLimit = sub.ErrRegistryFull

// SetSubscriptionLimit bounds the number of standing queries Subscribe
// accepts; n <= 0 restores the default (65536). The limit keeps the
// unauthenticated registration surface from growing memory without
// bound, and the default sits well below the bundle format's 1<<20
// subscriptions ceiling so a full registry always saves. Subscriptions
// restored from a bundle are never dropped by a lower limit, but new
// Subscribes are refused until the count falls below it.
func (s *Store) SetSubscriptionLimit(n int) { s.subs.SetLimit(n) }

// Subscribe validates and registers a standing query, returning the
// stored form: ID assigned, terms normalized through the collection's
// tokenizer (a multi-word entry contributes every token, duplicates
// collapse). Terms the collection has never seen are accepted — unlike a
// one-shot Query, a standing query naturally watches vocabulary that
// only future ingestion will intern — but every entry must survive
// tokenization. A store at its subscription limit refuses with a
// wrapped ErrSubscriptionLimit.
func (s *Store) Subscribe(spec Subscription) (Subscription, error) {
	if err := spec.Validate(); err != nil {
		return Subscription{}, err
	}
	terms, err := s.normalizeTerms(spec.Terms)
	if err != nil {
		return Subscription{}, err
	}
	spec.Terms = terms
	added, err := s.subs.Add(toInternalSub(spec))
	if err != nil {
		return Subscription{}, err
	}
	return fromInternalSub(added), nil
}

// normalizeTerms tokenizes every entry (each token contributes) and
// deduplicates, preserving first-seen order.
func (s *Store) normalizeTerms(terms []string) ([]string, error) {
	var out []string
	seen := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		toks := s.c.tok.Tokenize(t)
		if len(toks) == 0 {
			return nil, fmt.Errorf("stburst: subscription term %q tokenizes to nothing", t)
		}
		for _, tok := range toks {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			out = append(out, tok)
		}
	}
	return out, nil
}

// Unsubscribe removes a standing query, reporting whether it existed.
func (s *Store) Unsubscribe(id uint64) bool { return s.subs.Remove(id) }

// LookupSubscription returns one registered standing query.
func (s *Store) LookupSubscription(id uint64) (Subscription, bool) {
	is, ok := s.subs.Get(id)
	if !ok {
		return Subscription{}, false
	}
	return fromInternalSub(is), true
}

// Subscriptions lists every registered standing query in ascending ID
// order.
func (s *Store) Subscriptions() []Subscription {
	internal := s.subs.List()
	out := make([]Subscription, len(internal))
	for i, is := range internal {
		out[i] = fromInternalSub(is)
	}
	return out
}

// NumSubscriptions returns the number of registered standing queries.
func (s *Store) NumSubscriptions() int { return s.subs.Count() }

// toInternalSub converts the public subscription (already validated and
// normalized) to the registry's internal form.
func toInternalSub(s Subscription) sub.Subscription {
	is := sub.Subscription{
		ID:       s.ID,
		Owner:    s.Owner,
		Terms:    s.Terms,
		Kind:     int(s.Kind),
		MinScore: s.MinScore,
		Webhook:  s.Webhook,
	}
	if s.Region != nil {
		r := *s.Region
		is.Region = &r
	}
	if s.Time != nil {
		is.Time = &search.Timespan{Start: s.Time.Start, End: s.Time.End}
	}
	return is
}

// fromInternalSub converts back to the public form.
func fromInternalSub(is sub.Subscription) Subscription {
	s := Subscription{
		ID:       is.ID,
		Owner:    is.Owner,
		Terms:    is.Terms,
		Kind:     Kind(is.Kind),
		MinScore: is.MinScore,
		Webhook:  is.Webhook,
	}
	if is.Region != nil {
		r := *is.Region
		s.Region = &r
	}
	if is.Time != nil {
		s.Time = &Timespan{Start: is.Time.Start, End: is.Time.End}
	}
	return s
}

// matchDirtyLocked intersects the freshly installed patterns of the
// dirty terms against the registered standing queries and returns the
// resulting alerts; callers hold writeMu and call it immediately after
// the refreshed index set is installed, so s.indexes and s.gen describe
// exactly the state the batch produced.
//
// Cost is O(dirty terms): each dirty term is one inverted-index probe,
// and only terms somebody watches pay for pattern evaluation. The total
// registered-subscription count never enters the loop — the property the
// BenchmarkAlertMatch suite pins down.
func (s *Store) matchDirtyLocked(dirty []int) []Alert {
	if s.subs.Count() == 0 {
		return nil
	}
	resident := s.indexes.Load()
	gen := s.Generation()
	dict := s.c.col.Dict()
	points := s.c.col.Points()

	// Deterministic alert order: ascending term ID, then the registry's
	// ascending-ID candidate order, then kind.
	terms := append([]int(nil), dirty...)
	sort.Ints(terms)

	var alerts []Alert
	for _, id := range terms {
		term := dict.Term(id)
		cands := s.subs.Candidates(term)
		if len(cands) == 0 {
			continue
		}
		for _, cand := range cands {
			for _, k := range Kinds() {
				if cand.Kind != int(KindAny) && cand.Kind != int(k) {
					continue
				}
				ix := resident[int(k)-1]
				if ix == nil {
					continue
				}
				count, best, start, end := matchPatterns(ix, id, cand, points)
				if count == 0 {
					continue
				}
				alerts = append(alerts, Alert{
					SubscriptionID: cand.ID,
					Owner:          cand.Owner,
					Generation:     gen,
					Term:           term,
					Kind:           k,
					Score:          best,
					Patterns:       count,
					Start:          start,
					End:            end,
				})
			}
		}
	}
	// The term-major loop above orders by (term, subscription, kind);
	// regroup by subscription so one subscriber's alerts are adjacent —
	// the delivery layer batches per subscription.
	sort.SliceStable(alerts, func(i, j int) bool {
		return alerts[i].SubscriptionID < alerts[j].SubscriptionID
	})
	return alerts
}

// matchPatterns evaluates one (index, term, predicate) triple: the count
// of the term's patterns satisfying the predicate, and the score and
// timeframe of the best of them. The geometry predicates are the exact
// retrieval ones (search.WindowIntersects / CombIntersects /
// TemporalIntersects), so a standing query matches precisely when the
// equivalent one-shot Query's post-filter would accept a pattern.
func matchPatterns(ix *PatternIndex, termID int, cand sub.Subscription, points []Point) (count int, best float64, start, end int) {
	region, span, min := cand.Region, cand.Time, cand.MinScore
	consider := func(score float64, s, e int) {
		count++
		if count == 1 || score > best {
			best, start, end = score, s, e
		}
	}
	switch ix.PatternKind() {
	case KindRegional:
		for _, w := range ix.set.Windows(termID) {
			if w.Score >= min && search.WindowIntersects(w, region, span) {
				consider(w.Score, w.Start, w.End)
			}
		}
	case KindCombinatorial:
		for _, p := range ix.set.Combs(termID) {
			if p.Score >= min && search.CombIntersects(p, points, region, span) {
				consider(p.Score, p.Start, p.End)
			}
		}
	case KindTemporal:
		for _, iv := range ix.set.Temporal(termID) {
			if iv.Score >= min && search.TemporalIntersects(iv, span) {
				consider(iv.Score, iv.Start, iv.End)
			}
		}
	}
	return count, best, start, end
}

// emitAlerts hands one batch's alerts to the installed sink, if any.
// Called by Ingest after writeMu is released — a sink can safely read
// the store but must not block the ingesting goroutine for long.
func (s *Store) emitAlerts(alerts []Alert) {
	if len(alerts) == 0 {
		return
	}
	if f := s.alertSink.Load(); f != nil {
		(*f)(alerts)
	}
}

// subscriptionBlobs serializes the registered standing queries for the
// bundle's subscriptions block, in ascending ID order; callers hold
// writeMu (Save's snapshot includes the subscriptions).
func (s *Store) subscriptionBlobs() ([][]byte, error) {
	subs := s.Subscriptions()
	if len(subs) == 0 {
		return nil, nil
	}
	blobs := make([][]byte, len(subs))
	for i, spec := range subs {
		b, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("stburst: encoding subscription %d: %w", spec.ID, err)
		}
		blobs[i] = b
	}
	return blobs, nil
}

// restoreSubscriptions re-registers persisted subscription blobs on
// load. Blobs were written by subscriptionBlobs, so IDs are present and
// unique; any undecodable or invalid blob fails the load — a bundle that
// passed its checksum cannot hold a half-usable subscription set.
func (s *Store) restoreSubscriptions(blobs [][]byte) error {
	for _, b := range blobs {
		var spec Subscription
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("stburst: decoding persisted subscription: %w", err)
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("stburst: persisted subscription %d invalid: %w", spec.ID, err)
		}
		if err := s.subs.Restore(toInternalSub(spec)); err != nil {
			return err
		}
	}
	return nil
}
