// Command stsearch answers bursty-document queries over a JSONL corpus
// produced by stgen: it builds one of the three search engines of the
// paper (§5–6.3) and prints the top-k documents for the query, optionally
// restricted to a spatial region and/or timeframe (hits must have a
// contributing pattern intersecting the filter).
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stsearch -engine stlocal -q earthquake -k 10 < corpus.jsonl
//	stsearch -engine stcomb  -q "air france" < corpus.jsonl
//	stsearch -engine tb      -q fujimori < corpus.jsonl
//	stsearch -q earthquake -region -10,-10,10,10 -from 4 -to 9 < corpus.jsonl
//	stsearch -q earthquake -k 5 -offset 5 -min-score 1.5 < corpus.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/geo"
	"stburst/internal/index"
	"stburst/internal/search"
)

func main() {
	var (
		engineKind = flag.String("engine", "stlocal", "engine: stlocal, stcomb or tb")
		query      = flag.String("q", "", "query terms (required)")
		k          = flag.Int("k", 10, "number of documents to retrieve")
		offset     = flag.Int("offset", 0, "number of ranked documents to skip (pagination)")
		minScore   = flag.Float64("min-score", 0, "drop documents scoring below this threshold")
		region     = flag.String("region", "", "spatial filter minX,minY,maxX,maxY: hits need a contributing pattern intersecting it")
		from       = flag.Int("from", -1, "first timestamp of the temporal filter (inclusive; -1 = unbounded)")
		to         = flag.Int("to", -1, "last timestamp of the temporal filter (inclusive; -1 = unbounded)")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "stsearch: -q is required")
		os.Exit(2)
	}

	col, labels, err := corpusio.Load(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsearch:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "corpus: %d documents, %d streams, %d weeks\n",
		col.NumDocs(), col.NumStreams(), col.Length())

	start := time.Now()
	var ps *index.PatternSet
	switch *engineKind {
	case "stlocal", "regional":
		ps = index.NewWindowSet(search.MineWindows(col, core.STLocalOptions{}))
	case "stcomb", "combinatorial":
		ps = index.NewCombSet(search.MineCombPatterns(col, core.STCombOptions{}))
	case "tb", "temporal":
		ps = index.NewTemporalSet(search.MineTemporal(col, nil))
	default:
		fmt.Fprintf(os.Stderr, "stsearch: unknown engine %q\n", *engineKind)
		os.Exit(2)
	}
	eng := search.BuildFromPatterns(col, ps)
	fmt.Fprintf(os.Stderr, "%s engine built in %v\n", *engineKind, time.Since(start).Round(time.Millisecond))

	q := search.Query{Text: *query, K: *k, Offset: *offset, MinScore: *minScore}
	if *region != "" {
		r, err := geo.ParseRect(*region)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stsearch: -region:", err)
			os.Exit(2)
		}
		q.Region = &r
	}
	if *from >= 0 || *to >= 0 {
		span := search.Timespan{Start: 0, End: col.Length() - 1}
		if *from >= 0 {
			span.Start = *from
		}
		if *to >= 0 {
			span.End = *to
		}
		if span.Start > span.End {
			// Only an explicit -from > -to is a user error. A one-sided
			// bound past the data (e.g. -from beyond the timeline) is a
			// valid empty range, matching stserve's ?from=&to= handling:
			// degenerate it into a span that overlaps nothing.
			if *to >= 0 {
				fmt.Fprintf(os.Stderr, "stsearch: timespan [%d, %d] is inverted\n", span.Start, span.End)
				os.Exit(2)
			}
			// -from is past the timeline (the only one-sided inversion:
			// a lone -to can never undercut the default start of 0).
			span.End = span.Start
		}
		q.Span = &span
	}

	page, err := eng.Run(context.Background(), q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsearch:", err)
		os.Exit(1)
	}
	if len(page.Results) == 0 {
		fmt.Println("no bursty documents found for the query")
		return
	}
	for i, r := range page.Results {
		d := col.Doc(r.Doc)
		label := ""
		if labels != nil && labels[r.Doc] != 0 {
			label = fmt.Sprintf("  [event %d]", labels[r.Doc])
		}
		fmt.Printf("%2d. doc %-7d %-22s week %-3d score %.3f%s\n",
			*offset+i+1, r.Doc, col.Stream(d.Stream).Name, d.Time, r.Score, label)
	}
	if page.More {
		fmt.Printf("(more hits beyond this page: re-run with -offset %d)\n", *offset+len(page.Results))
	}
}
