// Command stsearch answers bursty-document queries over a JSONL corpus
// produced by stgen: it builds one of the three search engines of the
// paper (§5–6.3) and prints the top-k documents for the query.
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stsearch -engine stlocal -q earthquake -k 10 < corpus.jsonl
//	stsearch -engine stcomb  -q "air france" < corpus.jsonl
//	stsearch -engine tb      -q fujimori < corpus.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/search"
)

func main() {
	var (
		engineKind = flag.String("engine", "stlocal", "engine: stlocal, stcomb or tb")
		query      = flag.String("q", "", "query terms (required)")
		k          = flag.Int("k", 10, "number of documents to retrieve")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "stsearch: -q is required")
		os.Exit(2)
	}

	col, labels, err := corpusio.Load(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsearch:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "corpus: %d documents, %d streams, %d weeks\n",
		col.NumDocs(), col.NumStreams(), col.Length())

	start := time.Now()
	var eng *search.Engine
	switch *engineKind {
	case "stlocal":
		eng = search.Build(col, search.WindowBurstiness(search.MineWindows(col, core.STLocalOptions{})))
	case "stcomb":
		eng = search.Build(col, search.CombBurstiness(search.MineCombPatterns(col, core.STCombOptions{})))
	case "tb":
		eng = search.Build(col, search.TemporalBurstiness(search.MineTemporal(col, nil)))
	default:
		fmt.Fprintf(os.Stderr, "stsearch: unknown engine %q\n", *engineKind)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "%s engine built in %v\n", *engineKind, time.Since(start).Round(time.Millisecond))

	rs := eng.Query(*query, *k)
	if len(rs) == 0 {
		fmt.Println("no bursty documents found for the query")
		return
	}
	for i, r := range rs {
		d := col.Doc(r.Doc)
		label := ""
		if labels != nil && labels[r.Doc] != 0 {
			label = fmt.Sprintf("  [event %d]", labels[r.Doc])
		}
		fmt.Printf("%2d. doc %-7d %-22s week %-3d score %.3f%s\n",
			i+1, r.Doc, col.Stream(d.Stream).Name, d.Time, r.Score, label)
	}
}
