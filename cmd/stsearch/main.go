// Command stsearch answers bursty-document queries over a JSONL corpus
// produced by stgen: it mines one (or, with -kind any, all) of the three
// burstiness models of the paper (§5–6.3) into a pattern store and
// prints the top-k documents for the query, optionally restricted to a
// spatial region and/or timeframe (hits must have a contributing pattern
// intersecting the filter).
//
// -kind selects the burstiness model: regional (stlocal), combinatorial
// (stcomb), temporal (tb), or "any" — which mines all three kinds in one
// pass, fans the query out to each, and merges the rankings, tagging
// every hit with the kind that scored it. The older -engine flag remains
// as a deprecated alias; when both are given, the explicit -kind wins
// and a warning is printed to stderr.
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stsearch -kind regional -q earthquake -k 10 < corpus.jsonl
//	stsearch -kind stcomb   -q "air france" < corpus.jsonl
//	stsearch -kind any      -q fujimori < corpus.jsonl
//	stsearch -q earthquake -region -10,-10,10,10 -from 4 -to 9 < corpus.jsonl
//	stsearch -q earthquake -k 5 -offset 5 -min-score 1.5 < corpus.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stburst"
	"stburst/internal/geo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// resolveKindName picks the effective kind name from the -kind/-engine
// pair. The deprecated -engine alias only ever applies when -kind was
// not given explicitly: an explicit -kind always wins — even an empty
// one, which falls through to the default — and disagreeing flags earn
// a warning instead of silently searching the wrong model.
func resolveKindName(kindSet, engineSet bool, kindName, engineName string, stderr io.Writer) string {
	switch {
	case engineSet && !kindSet:
		fmt.Fprintln(stderr, "stsearch: -engine is deprecated; use -kind")
		return engineName
	case engineSet && kindSet:
		fmt.Fprintf(stderr, "stsearch: both -kind and -engine given; -engine is a deprecated alias, using -kind %q\n", kindName)
	}
	return kindName
}

// run is main with its environment injected, so the CLI tests can drive
// it end to end. It returns the process exit code: 0 on success, 1 on
// data errors, 2 on usage errors.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stsearch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kindName   = fs.String("kind", "", "pattern kind: regional/stlocal, combinatorial/stcomb, temporal/tb, or any (default regional)")
		engineKind = fs.String("engine", "", "deprecated alias for -kind (ignored when -kind is given)")
		query      = fs.String("q", "", "query terms (required)")
		k          = fs.Int("k", 10, "number of documents to retrieve")
		offset     = fs.Int("offset", 0, "number of ranked documents to skip (pagination)")
		minScore   = fs.Float64("min-score", 0, "drop documents scoring below this threshold")
		region     = fs.String("region", "", "spatial filter minX,minY,maxX,maxY: hits need a contributing pattern intersecting it")
		from       = fs.Int("from", -1, "first timestamp of the temporal filter (inclusive; -1 = unbounded)")
		to         = fs.Int("to", -1, "last timestamp of the temporal filter (inclusive; -1 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *query == "" {
		fmt.Fprintln(stderr, "stsearch: -q is required")
		return 2
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	name := resolveKindName(explicit["kind"], explicit["engine"], *kindName, *engineKind, stderr)
	if name == "" {
		name = "regional"
	}
	kind, err := stburst.ParseKind(name)
	if err != nil {
		fmt.Fprintln(stderr, "stsearch: -kind:", err)
		return 2
	}

	c, labels, err := stburst.LoadCorpusLabeled(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "stsearch:", err)
		return 1
	}
	fmt.Fprintf(stderr, "corpus: %d documents, %d streams, %d weeks\n",
		c.NumDocs(), c.NumStreams(), c.Timeline())

	start := time.Now()
	var store *stburst.Store
	if kind == stburst.KindAny {
		if store, err = c.MineStore(context.Background(), nil); err != nil {
			fmt.Fprintln(stderr, "stsearch:", err)
			return 1
		}
	} else {
		ix, err := c.Mine(context.Background(), kind, nil)
		if err != nil {
			fmt.Fprintln(stderr, "stsearch:", err)
			return 1
		}
		store = stburst.NewStore(c)
		if _, err := store.Swap(kind, ix); err != nil {
			fmt.Fprintln(stderr, "stsearch:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "%s engine built in %v\n", kind, time.Since(start).Round(time.Millisecond))

	q := stburst.Query{Text: *query, Kind: kind, K: *k, Offset: *offset, MinScore: *minScore}
	if *region != "" {
		r, err := geo.ParseRect(*region)
		if err != nil {
			fmt.Fprintln(stderr, "stsearch: -region:", err)
			return 2
		}
		q.Region = &r
	}
	if *from >= 0 || *to >= 0 {
		span := stburst.Timespan{Start: 0, End: c.Timeline() - 1}
		if *from >= 0 {
			span.Start = *from
		}
		if *to >= 0 {
			span.End = *to
		}
		if span.Start > span.End {
			// Only an explicit -from > -to is a user error. A one-sided
			// bound past the data (e.g. -from beyond the timeline) is a
			// valid empty range, matching stserve's ?from=&to= handling:
			// degenerate it into a span that overlaps nothing.
			if *to >= 0 {
				fmt.Fprintf(stderr, "stsearch: timespan [%d, %d] is inverted\n", span.Start, span.End)
				return 2
			}
			// -from is past the timeline (the only one-sided inversion:
			// a lone -to can never undercut the default start of 0).
			span.End = span.Start
		}
		q.Time = &span
	}

	page, err := store.Query(context.Background(), q)
	if err != nil {
		fmt.Fprintln(stderr, "stsearch:", err)
		return 1
	}
	if len(page.Hits) == 0 {
		fmt.Fprintln(stdout, "no bursty documents found for the query")
		return 0
	}
	for i, h := range page.Hits {
		label := ""
		if labels != nil && labels[h.Doc.ID] != 0 {
			label = fmt.Sprintf("  [event %d]", labels[h.Doc.ID])
		}
		tag := ""
		if kind == stburst.KindAny {
			tag = fmt.Sprintf("  [%s]", h.Kind)
		}
		fmt.Fprintf(stdout, "%2d. doc %-7d %-22s week %-3d score %.3f%s%s\n",
			*offset+i+1, h.Doc.ID, h.Stream, h.Doc.Time, h.Score, tag, label)
	}
	if page.More {
		fmt.Fprintf(stdout, "(more hits beyond this page: re-run with -offset %d)\n", *offset+len(page.Hits))
	}
	return 0
}
