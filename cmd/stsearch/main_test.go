package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// testCorpus is a minimal topix-format corpus: a quiet background plus a
// localized "earthquake" burst in Peru at weeks 4-6, so the regional and
// temporal miners disagree on nothing but produce patterns.
func testCorpus() string {
	var b strings.Builder
	b.WriteString(`{"kind":"topix","streams":["Peru","Japan"],"timeline":10}` + "\n")
	week := func(stream string, w int, counts string) {
		b.WriteString(`{"stream":"` + stream + `","time":` + itoa(w) + `,"counts":{` + counts + `},"event":0}` + "\n")
	}
	for w := 0; w < 10; w++ {
		week("Peru", w, `"politics":2,"weather":1`)
		week("Japan", w, `"markets":2,"weather":1`)
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 4; i++ {
			week("Peru", w, `"earthquake":3,"rescue":1`)
		}
	}
	return b.String()
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// runSearch drives the CLI end to end and returns exit code, stdout and
// stderr.
func runSearch(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(testCorpus()), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestKindWinsOverEngineAlias is the regression test for the flag
// precedence bug: with both -kind and -engine given, the explicit -kind
// must select the engine — with a warning — instead of being silently
// overridden by the deprecated alias.
func TestKindWinsOverEngineAlias(t *testing.T) {
	code, stdout, stderr := runSearch(t, "-kind", "regional", "-engine", "temporal", "-q", "earthquake")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "regional engine built") {
		t.Errorf("-kind regional lost to -engine temporal; stderr:\n%s", stderr)
	}
	if strings.Contains(stderr, "temporal engine built") {
		t.Errorf("deprecated -engine selected the engine; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "deprecated") || !strings.Contains(stderr, "using -kind") {
		t.Errorf("no precedence warning on stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "doc") {
		t.Errorf("no hits printed:\n%s", stdout)
	}
}

// TestEngineAliasAloneStillWorks: -engine without -kind keeps selecting
// the model (compatibility), but now warns about the deprecation.
func TestEngineAliasAloneStillWorks(t *testing.T) {
	code, _, stderr := runSearch(t, "-engine", "temporal", "-q", "earthquake")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "temporal engine built") {
		t.Errorf("-engine alone no longer selects the engine; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "-engine is deprecated") {
		t.Errorf("no deprecation warning on stderr:\n%s", stderr)
	}
}

// TestKindDefaultsRegionalWithoutWarning: the plain path stays quiet.
func TestKindDefaultsRegionalWithoutWarning(t *testing.T) {
	code, _, stderr := runSearch(t, "-q", "earthquake")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "regional engine built") {
		t.Errorf("default engine is not regional; stderr:\n%s", stderr)
	}
	if strings.Contains(stderr, "deprecated") {
		t.Errorf("spurious deprecation warning:\n%s", stderr)
	}
}

// TestUsageErrors: a missing query and an unknown kind are usage errors
// (exit 2) before any corpus is read.
func TestUsageErrors(t *testing.T) {
	if code := run([]string{"-kind", "nope", "-q", "x"}, strings.NewReader(""), io.Discard, io.Discard); code != 2 {
		t.Errorf("unknown kind: exit %d, want 2", code)
	}
	if code := run(nil, strings.NewReader(""), io.Discard, io.Discard); code != 2 {
		t.Errorf("missing -q: exit %d, want 2", code)
	}
}
