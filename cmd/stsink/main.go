// Command stsink is a minimal webhook receiver for alert-delivery
// smokes: it accepts every POST, appends each body as one line to -out
// (stdout by default), and reports how many it has taken on
// GET /v1/healthz — enough for a shell script to boot it, point an
// stserve subscription's webhook at it, and assert deliveries arrived.
//
// Usage:
//
//	stsink -addr :8100 -out alerts.jsonl
//	curl -s http://localhost:8100/v1/healthz   # {"status":"ok","received":N}
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
)

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	out := flag.String("out", "", "append accepted POST bodies to this file, one per line (default stdout)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("stsink: %v", err)
		}
		defer f.Close()
		w = f
	}

	var (
		mu       sync.Mutex
		received atomic.Int64
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /", func(rw http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(rw, "reading body", http.StatusBadRequest)
			return
		}
		mu.Lock()
		_, werr := w.Write(append(bytes.TrimRight(body, "\n"), '\n'))
		mu.Unlock()
		if werr != nil {
			// Refuse the delivery rather than acknowledge a body that
			// never reached the sink file; the dispatcher will retry.
			log.Printf("stsink: writing body: %v", werr)
			http.Error(rw, "sink write failed", http.StatusInternalServerError)
			return
		}
		received.Add(1)
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, "{\"status\":\"ok\",\"received\":%d}\n", received.Load())
	})

	log.Printf("stsink listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
