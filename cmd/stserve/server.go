package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"stburst"
)

// server is the HTTP query layer over one collection and one immutable
// pattern index. All state reachable from request handlers is read-only
// after construction (the index is immutable, the cached engine is built
// behind a sync.Once), so any number of requests may run concurrently.
type server struct {
	c  *stburst.Collection
	ix *stburst.PatternIndex
	// fingerprint is computed once at construction: the index is
	// immutable and hashing it is O(total patterns), far too much per
	// /stats poll.
	fingerprint string
	started     time.Time
	requests    atomic.Int64
	searches    atomic.Int64
	mux         *http.ServeMux
}

// newServer wires the endpoint handlers:
//
//	GET /healthz          liveness probe
//	GET /stats            index and traffic statistics
//	GET /patterns/{term}  stored patterns of a term
//	GET /search?q=&k=     TA-backed top-k bursty-document retrieval
func newServer(c *stburst.Collection, ix *stburst.PatternIndex) *server {
	s := &server{c: c, ix: ix, fingerprint: ix.Fingerprint(), started: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /patterns/{term}", s.handlePatterns)
	s.mux.HandleFunc("GET /search", s.handleSearch)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":           s.ix.Kind(),
		"terms":          s.ix.NumTerms(),
		"patterns":       s.ix.NumPatterns(),
		"fingerprint":    s.fingerprint,
		"docs":           s.c.NumDocs(),
		"streams":        s.c.NumStreams(),
		"timeline":       s.c.Timeline(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"requests":       s.requests.Load(),
		"searches":       s.searches.Load(),
	})
}

// streamNames resolves stream indices to their names for human-readable
// responses.
func (s *server) streamNames(streams []int) []string {
	out := make([]string, len(streams))
	for i, x := range streams {
		out[i] = s.c.Stream(x).Name
	}
	return out
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type intervalJSON struct {
	Stream string  `json:"stream"`
	Start  int     `json:"start"`
	End    int     `json:"end"`
	Weight float64 `json:"weight"`
}

type patternJSON struct {
	Start     int            `json:"start"`
	End       int            `json:"end"`
	Score     float64        `json:"score"`
	Rect      *rectJSON      `json:"rect,omitempty"`
	Streams   []string       `json:"streams,omitempty"`
	Intervals []intervalJSON `json:"intervals,omitempty"`
}

func (s *server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	term := r.PathValue("term")
	var patterns []patternJSON
	switch s.ix.Kind() {
	case "regional":
		for _, p := range s.ix.RegionalPatterns(term) {
			patterns = append(patterns, patternJSON{
				Start: p.Start, End: p.End, Score: p.Score,
				Rect:    &rectJSON{MinX: p.Rect.MinX, MinY: p.Rect.MinY, MaxX: p.Rect.MaxX, MaxY: p.Rect.MaxY},
				Streams: s.streamNames(p.Streams),
			})
		}
	case "combinatorial":
		for _, p := range s.ix.CombinatorialPatterns(term) {
			pj := patternJSON{
				Start: p.Start, End: p.End, Score: p.Score,
				Streams: s.streamNames(p.Streams),
			}
			for _, iv := range p.Intervals {
				pj.Intervals = append(pj.Intervals, intervalJSON{
					Stream: s.c.Stream(iv.Stream).Name,
					Start:  iv.Start, End: iv.End, Weight: iv.Weight,
				})
			}
			patterns = append(patterns, pj)
		}
	case "temporal":
		for _, p := range s.ix.TemporalBursts(term) {
			patterns = append(patterns, patternJSON{Start: p.Start, End: p.End, Score: p.Score})
		}
	}
	if len(patterns) == 0 {
		writeError(w, http.StatusNotFound, "no patterns for term "+strconv.Quote(term))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"term":     term,
		"kind":     s.ix.Kind(),
		"patterns": patterns,
	})
}

type hitJSON struct {
	Doc    int     `json:"doc"`
	Stream string  `json:"stream"`
	Time   int     `json:"time"`
	Score  float64 `json:"score"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "parameter k must be a positive integer")
			return
		}
	}
	s.searches.Add(1)
	start := time.Now()
	hits := s.ix.Search(q, k)
	out := make([]hitJSON, len(hits))
	for i, h := range hits {
		out[i] = hitJSON{Doc: h.Doc.ID, Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":      q,
		"k":          k,
		"took_ms":    float64(time.Since(start).Microseconds()) / 1000,
		"total_hits": len(out),
		"hits":       out,
	})
}
