package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"stburst"
	"stburst/internal/geo"
	"stburst/internal/search"
)

// server is the HTTP query layer over one collection and one immutable
// pattern index. All state reachable from request handlers is read-only
// after construction (the index is immutable, the cached engine is built
// behind a sync.Once), so any number of requests may run concurrently.
//
// The stable contract is the versioned /v1/ JSON API:
//
//	POST /v1/search          structured spatiotemporal query (stburst.Query JSON)
//	GET  /v1/patterns/{term} stored patterns, filterable by ?region=&from=&to=
//	GET  /v1/stats           index and traffic statistics
//	GET  /v1/healthz         liveness probe
//
// The pre-/v1 routes (/healthz, /stats, /patterns/{term}, /search?q=&k=)
// remain as aliases for existing clients.
type server struct {
	c  *stburst.Collection
	ix *stburst.PatternIndex
	// fingerprint is computed once at construction: the index is
	// immutable and hashing it is O(total patterns), far too much per
	// /stats poll.
	fingerprint string
	// points caches the stream locations for the combinatorial
	// pattern-vs-region intersection checks.
	points   []stburst.Point
	started  time.Time
	requests atomic.Int64
	searches atomic.Int64
	mux      *http.ServeMux
}

// newServer wires the endpoint handlers.
func newServer(c *stburst.Collection, ix *stburst.PatternIndex) *server {
	s := &server{c: c, ix: ix, fingerprint: ix.Fingerprint(), started: time.Now(), mux: http.NewServeMux()}
	s.points = make([]stburst.Point, c.NumStreams())
	for x := range s.points {
		s.points[x] = c.Stream(x).Location
	}
	// The versioned contract.
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/patterns/{term}", s.handlePatterns)
	s.mux.HandleFunc("POST /v1/search", s.handleSearchV1)
	// Legacy aliases, kept verbatim for pre-/v1 clients.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /patterns/{term}", s.handlePatterns)
	s.mux.HandleFunc("GET /search", s.handleSearchLegacy)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure still produces a clean 500 (no header has been
// written yet) instead of a truncated 200 body. Encode and write errors
// are logged — a failed write after the header means the client is gone,
// and the only remaining duty is to record it, never to write again.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		if _, err := fmt.Fprintln(w, `{"error":"internal: response encoding failed"}`); err != nil {
			log.Printf("writing encoding-failure response: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := buf.WriteTo(w); err != nil {
		log.Printf("writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":           s.ix.Kind(),
		"terms":          s.ix.NumTerms(),
		"patterns":       s.ix.NumPatterns(),
		"fingerprint":    s.fingerprint,
		"docs":           s.c.NumDocs(),
		"streams":        s.c.NumStreams(),
		"timeline":       s.c.Timeline(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"requests":       s.requests.Load(),
		"searches":       s.searches.Load(),
	})
}

// streamNames resolves stream indices to their names for human-readable
// responses.
func (s *server) streamNames(streams []int) []string {
	out := make([]string, len(streams))
	for i, x := range streams {
		out[i] = s.c.Stream(x).Name
	}
	return out
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type intervalJSON struct {
	Stream string  `json:"stream"`
	Start  int     `json:"start"`
	End    int     `json:"end"`
	Weight float64 `json:"weight"`
}

type patternJSON struct {
	Start     int            `json:"start"`
	End       int            `json:"end"`
	Score     float64        `json:"score"`
	Rect      *rectJSON      `json:"rect,omitempty"`
	Streams   []string       `json:"streams,omitempty"`
	Intervals []intervalJSON `json:"intervals,omitempty"`
}

// parseSpan parses the ?from=&to= pair into a timespan. Either bound may
// be omitted; the other defaults to the start or end of the timeline. A
// one-sided bound beyond the timeline is a valid (empty) range, not an
// inversion: only an explicit from > to is rejected, matching what
// POST /v1/search accepts in its time field.
func (s *server) parseSpan(from, to string) (*stburst.Timespan, error) {
	if from == "" && to == "" {
		return nil, nil
	}
	span := &stburst.Timespan{Start: 0, End: s.c.Timeline() - 1}
	if from != "" {
		v, err := strconv.Atoi(from)
		if err != nil {
			return nil, fmt.Errorf("from must be an integer timestamp, got %q", from)
		}
		span.Start = v
	}
	if to != "" {
		v, err := strconv.Atoi(to)
		if err != nil {
			return nil, fmt.Errorf("to must be an integer timestamp, got %q", to)
		}
		span.End = v
	}
	if span.Start > span.End {
		if from != "" && to != "" {
			return nil, fmt.Errorf("timespan [%d, %d] is inverted", span.Start, span.End)
		}
		// Only the defaulted bound made it inverted (e.g. ?from= past the
		// timeline): degenerate it into a span that overlaps nothing.
		if from != "" {
			span.End = span.Start
		} else {
			span.Start = span.End
		}
	}
	return span, nil
}

// patterns assembles the JSON form of a term's stored patterns that
// intersect the given region/timespan (nil filters match everything).
// Intersection is decided by the same per-kind predicates the search
// engine's post-filter uses (search.WindowIntersects etc.), so the two
// /v1 routes can never disagree about what "intersects" means.
func (s *server) patterns(term string, region *stburst.Rect, span *stburst.Timespan) []patternJSON {
	var sp *search.Timespan
	if span != nil {
		sp = &search.Timespan{Start: span.Start, End: span.End}
	}
	var patterns []patternJSON
	switch s.ix.Kind() {
	case "regional":
		for _, p := range s.ix.RegionalPatterns(term) {
			if !search.WindowIntersects(p, region, sp) {
				continue
			}
			patterns = append(patterns, patternJSON{
				Start: p.Start, End: p.End, Score: p.Score,
				Rect:    &rectJSON{MinX: p.Rect.MinX, MinY: p.Rect.MinY, MaxX: p.Rect.MaxX, MaxY: p.Rect.MaxY},
				Streams: s.streamNames(p.Streams),
			})
		}
	case "combinatorial":
		for _, p := range s.ix.CombinatorialPatterns(term) {
			if !search.CombIntersects(p, s.points, region, sp) {
				continue
			}
			pj := patternJSON{
				Start: p.Start, End: p.End, Score: p.Score,
				Streams: s.streamNames(p.Streams),
			}
			for _, iv := range p.Intervals {
				pj.Intervals = append(pj.Intervals, intervalJSON{
					Stream: s.c.Stream(iv.Stream).Name,
					Start:  iv.Start, End: iv.End, Weight: iv.Weight,
				})
			}
			patterns = append(patterns, pj)
		}
	case "temporal":
		for _, p := range s.ix.TemporalBursts(term) {
			if !search.TemporalIntersects(p, sp) {
				continue
			}
			patterns = append(patterns, patternJSON{Start: p.Start, End: p.End, Score: p.Score})
		}
	}
	return patterns
}

// handlePatterns serves GET /v1/patterns/{term}?region=&from=&to= and
// the legacy GET /patterns/{term} alias (which simply never defined the
// filter parameters; sending them there filters identically).
func (s *server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	term := r.PathValue("term")
	var region *stburst.Rect
	if raw := r.URL.Query().Get("region"); raw != "" {
		rect, err := geo.ParseRect(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		region = &rect
	}
	span, err := s.parseSpan(r.URL.Query().Get("from"), r.URL.Query().Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	patterns := s.patterns(term, region, span)
	if len(patterns) == 0 {
		writeError(w, http.StatusNotFound, "no patterns for term "+strconv.Quote(term))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"term":     term,
		"kind":     s.ix.Kind(),
		"patterns": patterns,
	})
}

type hitJSON struct {
	Doc    int     `json:"doc"`
	Stream string  `json:"stream"`
	Time   int     `json:"time"`
	Score  float64 `json:"score"`
}

// runQuery executes a structured query and writes the response shared by
// both search routes. The request context is threaded through, so a
// client that disconnects mid-query cancels the retrieval loop.
func (s *server) runQuery(w http.ResponseWriter, r *http.Request, q stburst.Query) {
	s.searches.Add(1)
	start := time.Now()
	page, err := s.ix.Query(r.Context(), q)
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; there is no one left to answer.
		log.Printf("search cancelled: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hits := make([]hitJSON, len(page.Hits))
	for i, h := range page.Hits {
		hits[i] = hitJSON{Doc: h.Doc.ID, Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":   q,
		"took_ms": float64(time.Since(start).Microseconds()) / 1000,
		// count is the size of *this page*; with offset paging the full
		// result-set size is unknown (the TA never enumerates it), and
		// more flags whether later pages exist.
		"count": len(hits),
		"more":  page.More,
		"hits":  hits,
	})
}

// handleSearchV1 answers POST /v1/search: the body is the stburst.Query
// JSON shape, validated by Engine.Run via Query.Validate.
func (s *server) handleSearchV1(w http.ResponseWriter, r *http.Request) {
	var q stburst.Query
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "invalid query body: "+err.Error())
		return
	}
	s.runQuery(w, r, q)
}

// handleSearchLegacy answers the pre-/v1 GET /search?q=&k= route with the
// original response shape.
func (s *server) handleSearchLegacy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "parameter k must be a positive integer")
			return
		}
	}
	s.searches.Add(1)
	start := time.Now()
	page, err := s.ix.Query(r.Context(), stburst.Query{Text: q, K: k})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			log.Printf("search cancelled: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]hitJSON, len(page.Hits))
	for i, h := range page.Hits {
		out[i] = hitJSON{Doc: h.Doc.ID, Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":      q,
		"k":          k,
		"took_ms":    float64(time.Since(start).Microseconds()) / 1000,
		"total_hits": len(out),
		"hits":       out,
	})
}
