package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stburst"
)

// serveCollection builds a small deterministic corpus with one strongly
// localized burst so every engine kind has patterns to serve.
func serveCollection(t *testing.T) *stburst.Collection {
	t.Helper()
	streams := []stburst.StreamInfo{
		{Name: "lima", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "quito", Location: stburst.Point{X: 3, Y: 2}},
		{Name: "tokyo", Location: stburst.Point{X: 95, Y: 80}},
	}
	c := stburst.NewCollection(streams, 12)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 12; w++ {
		add(0, w, "markets steady calm trading")
		add(1, w, "football results weather outlook")
		add(2, w, "technology exports quarterly report")
	}
	for w := 5; w <= 7; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake shakes coast rescue earthquake")
			add(1, w, "earthquake tremors border region")
		}
	}
	return c
}

// get performs a request against the handler and decodes the JSON body.
func get(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type %q, want application/json", url, ct)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func TestServerHealthz(t *testing.T) {
	c := serveCollection(t)
	s := newServer(c, c.MineAllRegional(nil, 0))
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("GET /healthz = %d %v, want 200 ok", code, body)
	}
}

func TestServerStats(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := newServer(c, ix)
	code, body := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", code)
	}
	if body["kind"] != "regional" {
		t.Errorf("stats kind %v, want regional", body["kind"])
	}
	if body["fingerprint"] != ix.Fingerprint() {
		t.Errorf("stats fingerprint %v, want %s", body["fingerprint"], ix.Fingerprint())
	}
	if int(body["terms"].(float64)) != ix.NumTerms() {
		t.Errorf("stats terms %v, want %d", body["terms"], ix.NumTerms())
	}
	if int(body["docs"].(float64)) != c.NumDocs() {
		t.Errorf("stats docs %v, want %d", body["docs"], c.NumDocs())
	}
	// The stats request itself is counted.
	if int(body["requests"].(float64)) < 1 {
		t.Errorf("stats requests %v, want >= 1", body["requests"])
	}
}

func TestServerPatterns(t *testing.T) {
	c := serveCollection(t)
	kinds := map[string]*stburst.PatternIndex{
		"regional":      c.MineAllRegional(nil, 0),
		"combinatorial": c.MineAllCombinatorial(nil, 0),
		"temporal":      c.MineAllTemporal(0),
	}
	for kind, ix := range kinds {
		t.Run(kind, func(t *testing.T) {
			s := newServer(c, ix)
			code, body := get(t, s, "/patterns/earthquake")
			if code != http.StatusOK {
				t.Fatalf("GET /patterns/earthquake = %d, want 200", code)
			}
			if body["kind"] != kind || body["term"] != "earthquake" {
				t.Errorf("patterns response kind=%v term=%v, want %s earthquake", body["kind"], body["term"], kind)
			}
			patterns, ok := body["patterns"].([]any)
			if !ok || len(patterns) == 0 {
				t.Fatalf("patterns response has no patterns: %v", body)
			}
			first, ok := patterns[0].(map[string]any)
			if !ok {
				t.Fatalf("pattern entry is %T, want object", patterns[0])
			}
			if _, ok := first["score"]; !ok {
				t.Errorf("pattern entry missing score: %v", first)
			}
			if kind == "regional" {
				if _, ok := first["rect"]; !ok {
					t.Errorf("regional pattern missing rect: %v", first)
				}
			}

			code, body = get(t, s, "/patterns/nosuchterm")
			if code != http.StatusNotFound {
				t.Errorf("GET /patterns/nosuchterm = %d %v, want 404", code, body)
			}
		})
	}
}

func TestServerSearch(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := newServer(c, ix)

	code, body := get(t, s, "/search?q=earthquake&k=5")
	if code != http.StatusOK {
		t.Fatalf("GET /search = %d %v, want 200", code, body)
	}
	hits, ok := body["hits"].([]any)
	if !ok || len(hits) == 0 {
		t.Fatalf("search returned no hits: %v", body)
	}
	want := ix.Search("earthquake", 5)
	if len(hits) != len(want) {
		t.Fatalf("search returned %d hits over HTTP, %d in process", len(hits), len(want))
	}
	first := hits[0].(map[string]any)
	if int(first["doc"].(float64)) != want[0].Doc.ID || first["stream"] != want[0].Stream {
		t.Errorf("first hit %v, want doc %d stream %s", first, want[0].Doc.ID, want[0].Stream)
	}

	// A query term outside every pattern yields an empty hit list, not an
	// error (Eq. 10: the document set is empty, the query is still valid).
	code, body = get(t, s, "/search?q=markets&k=5")
	if code != http.StatusOK {
		t.Fatalf("GET /search?q=markets = %d %v, want 200", code, body)
	}
	if n := int(body["total_hits"].(float64)); n != len(ix.Search("markets", 5)) {
		t.Errorf("background-term search: %d hits over HTTP, %d in process", n, len(ix.Search("markets", 5)))
	}
}

func TestServerSearchValidation(t *testing.T) {
	c := serveCollection(t)
	s := newServer(c, c.MineAllRegional(nil, 0))
	for _, url := range []string{"/search", "/search?q=", "/search?q=earthquake&k=0", "/search?q=earthquake&k=-3", "/search?q=earthquake&k=abc"} {
		if code, body := get(t, s, url); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d %v, want 400", url, code, body)
		} else if _, ok := body["error"]; !ok {
			t.Errorf("GET %s: 400 body missing error field: %v", url, body)
		}
	}
}

func TestServerMethodAndRouteErrors(t *testing.T) {
	c := serveCollection(t)
	s := newServer(c, c.MineAllRegional(nil, 0))

	req := httptest.NewRequest(http.MethodPost, "/search?q=earthquake", strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /search = %d, want 405", rec.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/nosuchroute", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /nosuchroute = %d, want 404", rec.Code)
	}
}

func TestServerConcurrentReads(t *testing.T) {
	c := serveCollection(t)
	s := newServer(c, c.MineAllRegional(nil, 0))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				if code, _ := get(t, s, "/search?q=earthquake&k=3"); code != http.StatusOK {
					t.Errorf("concurrent search returned %d", code)
					return
				}
				if code, _ := get(t, s, "/patterns/earthquake"); code != http.StatusOK {
					t.Errorf("concurrent patterns returned %d", code)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
