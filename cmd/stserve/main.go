// Command stserve is the long-running query service of the
// mine-once/serve-many pipeline: it loads a corpus plus a pattern-index
// snapshot (mining the corpus itself only when no snapshot exists) and
// answers concurrent HTTP queries off the immutable in-memory index.
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -all -corpus corpus.jsonl -o snapshot.stb
//	stserve -corpus corpus.jsonl -snapshot snapshot.stb -addr :8080
//
// The stable contract is the versioned /v1/ JSON API:
//
//	POST /v1/search          structured spatiotemporal query: the body is
//	                         the stburst.Query JSON shape ({"text": ...,
//	                         "region": {"min_x": ...}, "time": {"start":
//	                         ..., "end": ...}, "k": ..., "offset": ...,
//	                         "min_score": ...})
//	GET  /v1/patterns/{term} the stored patterns of a term (404 when
//	                         none), filterable by ?region=minX,minY,maxX,maxY
//	                         and ?from=&to= timestamps
//	GET  /v1/stats           index size, fingerprint, uptime, traffic counters
//	GET  /v1/healthz         liveness probe
//
// The pre-/v1 routes (GET /healthz, /stats, /patterns/{term},
// /search?q=&k=) remain as aliases with their original response shapes.
//
// When -snapshot names a file that does not exist, stserve mines the
// corpus with the batch miners (-method selects the pattern kind,
// -parallel the worker count) and writes the snapshot there, so the next
// boot skips mining entirely.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"stburst"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		corpus   = flag.String("corpus", "", "JSONL corpus path (required)")
		snapshot = flag.String("snapshot", "", "pattern-index snapshot path (loaded if present, written after mining otherwise)")
		method   = flag.String("method", "stlocal", "miner when no snapshot exists: stlocal, stcomb or tb")
		parallel = flag.Int("parallel", 0, "mining workers (<1 = one per CPU)")
	)
	flag.Parse()
	log.SetPrefix("stserve: ")
	log.SetFlags(0)
	if *corpus == "" {
		log.Fatal("-corpus is required")
	}

	f, err := os.Open(*corpus)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	c, err := stburst.LoadCorpus(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus %s: %d docs, %d streams, %d timestamps (loaded in %v)",
		*corpus, c.NumDocs(), c.NumStreams(), c.Timeline(), time.Since(start).Round(time.Millisecond))

	ix, err := loadOrMine(c, *snapshot, *method, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("index: kind %s, %d terms, %d patterns, fingerprint %.12s...",
		ix.Kind(), ix.NumTerms(), ix.NumPatterns(), ix.Fingerprint())

	start = time.Now()
	ix.Engine() // warm the cached search engine before accepting traffic
	log.Printf("search engine built in %v", time.Since(start).Round(time.Millisecond))

	log.Printf("listening on %s", *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(c, ix),
		// Queries answer in microseconds; anything holding a connection
		// for seconds is a stalled or malicious client, and a
		// long-running service must not pin goroutines on them.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

// loadOrMine restores the pattern index from the snapshot when one
// exists, and otherwise mines the corpus — writing the freshly mined
// index back to the snapshot path (when given) so subsequent boots load
// instead of mining.
func loadOrMine(c *stburst.Collection, path, method string, parallel int) (*stburst.PatternIndex, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			start := time.Now()
			ix, err := stburst.LoadPatternIndex(f, c)
			if err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", path, err)
			}
			log.Printf("snapshot %s loaded in %v", path, time.Since(start).Round(time.Millisecond))
			return ix, nil
		case !os.IsNotExist(err):
			return nil, err
		}
		log.Printf("snapshot %s does not exist; mining corpus", path)
	}

	kind, err := stburst.ParseKind(method)
	if err != nil {
		return nil, fmt.Errorf("-method: %w", err)
	}
	start := time.Now()
	ix, err := c.Mine(context.Background(), kind,
		stburst.NewMineOptions(stburst.WithParallelism(parallel)))
	if err != nil {
		return nil, err
	}
	log.Printf("mined %d terms in %v", ix.NumTerms(), time.Since(start).Round(time.Millisecond))

	if path != "" {
		if err := ix.SaveFile(path); err != nil {
			return nil, err
		}
		log.Printf("snapshot written to %s", path)
	}
	return ix, nil
}
