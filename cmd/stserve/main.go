// Command stserve is the long-running query service of the
// mine-once/serve-many pipeline: it loads a corpus plus a pattern store
// (mining the corpus itself only when no snapshot exists) and answers
// concurrent HTTP queries off immutable in-memory indexes — up to one
// per pattern kind, served side by side from the same process.
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -all -method all -corpus corpus.jsonl -o corpus.bundle
//	stserve -corpus corpus.jsonl -snapshot corpus.bundle -addr :8080
//
// -snapshot accepts every artifact the miner produces: a multi-kind
// bundle (stmine -method all), a single-kind .stb snapshot, or one
// shard of a partitioned vocabulary (stmine -shards N). A shard bundle
// turns this process into one read-only member of a cluster served
// through stgate: -ingest and -wal-dir are refused, the bundle's
// recorded corpus fingerprint must match -corpus, and the shard
// coordinates are reported by /v1/healthz, /v1/stats and /metrics so
// the gateway can verify the member set. The stable contract is the
// versioned /v1/ JSON API:
//
//	POST /v1/search          structured spatiotemporal query: the body is
//	                         the stburst.Query JSON shape ({"text": ...,
//	                         "kind": "regional"|"combinatorial"|
//	                         "temporal"|"any", "region": {"min_x": ...},
//	                         "time": {"start": ..., "end": ...}, "k": ...,
//	                         "offset": ..., "min_score": ...}); "any" (or
//	                         an absent kind) fans out to every resident
//	                         index and merges the hits, each tagged with
//	                         the kind that scored it
//	GET  /v1/patterns/{term} the stored patterns of a term (404 when
//	                         none), filterable by ?kind= and
//	                         ?region=minX,minY,maxX,maxY and ?from=&to=
//	GET  /v1/indexes         the resident kinds with sizes and fingerprints
//	POST /v1/documents       live batch ingest (requires -ingest): the body
//	                         is {"documents": [{"stream": "Japan", "time":
//	                         3, "text": "..."}, ...]}; documents are
//	                         appended under traffic and only the dirty
//	                         terms are re-mined, answered with 202 plus
//	                         the new generation and dirty-term count
//	POST /v1/subscriptions   register a standing query (requires
//	                         -subscriptions): the body names terms plus an
//	                         optional kind/region/time/min_score predicate
//	                         and an optional webhook URL; after every ingest
//	                         the freshly re-mined patterns of the batch's
//	                         dirty terms are intersected against the
//	                         predicate and matches are delivered. GET lists
//	                         the registered queries, GET /{id} fetches one,
//	                         DELETE /{id} removes one
//	GET  /v1/alerts/stream   Server-Sent Events firehose of every alert
//	                         batch the matcher produces (clients filter by
//	                         subscription_id)
//	GET  /v1/generation      the store generation — a counter every swap,
//	                         reload and ingest advances, for cache-busting
//	POST /v1/reload          atomically swap in freshly mined indexes from
//	                         the -snapshot file, without pausing traffic —
//	                         the cold-path alternative to /v1/documents
//	GET  /v1/stats           index size, fingerprint, generation, pending
//	                         ingest depth, uptime, traffic counters
//	GET  /v1/healthz         liveness probe
//	GET  /metrics            Prometheus text exposition: per-route request
//	                         counters and latency histograms, in-flight
//	                         gauge, store generation and ingest depth
//
// The pre-/v1 routes (GET /healthz, /stats, /patterns/{term},
// /search?q=&k=) remain as aliases: /search keeps its exact original
// hit shape, the others their original fields plus additive ones.
//
// When -snapshot names a file that does not exist, stserve mines the
// corpus (-method selects the pattern kind, "all" mines all three in one
// pass; -parallel the worker count) and writes the artifact there — a
// bundle for "all", a snapshot otherwise — so the next boot skips mining
// entirely.
//
// -ingest arms the write surface. Incoming documents buffer in a
// batching ingester: -ingest-batch sets how many accumulate before a
// flush (default 1: every request flushes synchronously and its response
// reports the resulting generation), and -ingest-interval bounds how
// long a trickle may sit buffered. Each flush appends the batch to the
// in-memory collection and incrementally re-mines only the dirty terms,
// hot-swapping the refreshed indexes under live queries. The -snapshot
// file on disk is not rewritten by ingestion; POST /v1/reload therefore
// reverts to the snapshot's indexes (the appended documents survive in
// memory) until the process is restarted or the file is re-mined.
//
// -wal-dir arms crash durability for ingestion: every accepted batch is
// framed, checksummed and (under -fsync always, the default) fsync'd to
// a write-ahead log in that directory before it is applied, and on the
// next boot the log is replayed through the same deterministic append
// path — a kill -9 mid-ingest loses nothing that was acknowledged. A
// successful snapshot save rotates the log's segments. -fsync never
// trades that guarantee for speed: the OS flushes when it pleases, and
// a crash may lose acknowledged batches. -wal-prune additionally
// absorbs sealed segments into the -corpus file after every snapshot
// save so the log stays bounded, and -wal-prune-interval re-saves the
// -snapshot bundle on a timer so those saves actually happen under
// sustained ingestion.
//
// Streaming connectors pull documents in without any HTTP client.
// -tail follows a growing JSONL feed file (the stgen -follow format:
// an optional header line, then one document per line), resuming after
// a restart from an fsync'd checkpoint next to the feed so no document
// is lost or applied twice; -listen-ingest accepts line- or
// length-framed JSONL documents over TCP (-listen-framing picks the
// framing). Both deliver through the same Ingester → WAL → dirty-term
// re-mine path as POST /v1/documents, are supervised with capped
// exponential backoff, and report per-connector counters on /metrics
// and a connectors block on /v1/stats. On shutdown the sources drain
// their buffered batches before the WAL closes.
//
// -debug-addr starts a second listener with net/http/pprof under
// /debug/pprof/ (plus another /metrics exposition). Profiling never
// shares the serving listener: the /v1 surface is unauthenticated, and a
// CPU profile pins the process for seconds — operators opt in on a
// loopback or firewalled port instead.
//
// stserve shuts down gracefully: SIGINT or SIGTERM stops accepting new
// connections and drains in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stburst"
	"stburst/internal/connector"
	"stburst/internal/serve"
	"stburst/internal/sub"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		debugAddr      = flag.String("debug-addr", "", "optional second listener with /debug/pprof/ and /metrics (keep it loopback or firewalled)")
		corpus         = flag.String("corpus", "", "JSONL corpus path (required)")
		snapshot       = flag.String("snapshot", "", "pattern snapshot or bundle path (loaded if present, written after mining otherwise)")
		method         = flag.String("method", "stlocal", "miner when no snapshot exists: stlocal, stcomb, tb or all")
		parallel       = flag.Int("parallel", 0, "mining workers (<1 = one per CPU)")
		ingest         = flag.Bool("ingest", false, "enable the POST /v1/documents write surface")
		ingestBatch    = flag.Int("ingest-batch", 1, "buffer this many documents before an ingest flush (1 = flush every request)")
		ingestInterval = flag.Duration("ingest-interval", 0, "flush buffered documents at least this often (0 = only on batch size)")
		subscriptions  = flag.Bool("subscriptions", false, "enable the /v1/subscriptions standing-query surface and the /v1/alerts/stream SSE feed")
		allowPrivate   = flag.Bool("webhook-allow-private", false, "permit webhook deliveries to loopback, private-range and link-local addresses (off by default: SSRF guard)")
		maxSubs        = flag.Int("max-subscriptions", 0, "cap on registered subscriptions; creates past it answer 429 (0 = default 65536)")
		walDir         = flag.String("wal-dir", "", "write-ahead log directory: log every ingest batch before applying it and replay the log on boot")
		fsync          = flag.String("fsync", "always", "WAL fsync policy: always (acknowledged = durable) or never (faster, crash may lose batches)")
		walPrune       = flag.Bool("wal-prune", false, "absorb sealed WAL segments into the -corpus file after each snapshot save so the log stays bounded (requires -wal-dir)")
		walPruneIvl    = flag.Duration("wal-prune-interval", 0, "re-save the -snapshot bundle this often so -wal-prune compacts the log under sustained ingestion (requires -wal-prune and -snapshot)")
		tailPath       = flag.String("tail", "", "follow this JSONL feed file, ingesting appended documents as they arrive (resumes from a checkpoint)")
		tailCkpt       = flag.String("tail-checkpoint", "", "tailer checkpoint file (default: <tail path>.checkpoint)")
		listenIngest   = flag.String("listen-ingest", "", "accept framed JSONL documents over TCP on this address and ingest them")
		listenFraming  = flag.String("listen-framing", "line", "ingest socket framing: line (newline-delimited) or len (4-byte big-endian length prefix)")
	)
	flag.Parse()
	log.SetPrefix("stserve: ")
	log.SetFlags(0)
	if *corpus == "" {
		log.Fatal("-corpus is required")
	}
	if *walPrune && *walDir == "" {
		log.Fatal("-wal-prune requires -wal-dir: there is no log to prune")
	}
	if *walPruneIvl > 0 {
		if !*walPrune {
			log.Fatal("-wal-prune-interval requires -wal-prune: a periodic save without pruning armed never compacts the log")
		}
		if *snapshot == "" {
			log.Fatal("-wal-prune-interval requires -snapshot: there is nowhere to save the bundle")
		}
	}
	var socketFraming connector.Framing
	if *listenIngest != "" {
		var err error
		if socketFraming, err = connector.ParseFraming(*listenFraming); err != nil {
			log.Fatal(err)
		}
	}
	connectorsEnabled := *tailPath != "" || *listenIngest != ""
	var walSync stburst.WALSync
	switch *fsync {
	case "always":
		walSync = stburst.WALSyncAlways
	case "never":
		walSync = stburst.WALSyncNever
	default:
		log.Fatalf("-fsync must be \"always\" or \"never\", got %q", *fsync)
	}

	f, err := os.Open(*corpus)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	c, err := stburst.LoadCorpus(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus %s: %d docs, %d streams, %d timestamps (loaded in %v)",
		*corpus, c.NumDocs(), c.NumStreams(), c.Timeline(), time.Since(start).Round(time.Millisecond))

	// Recovery phase 1: replay logged batches into the collection BEFORE
	// indexes load or mine — a logged batch may have interned vocabulary
	// the snapshot references, and mining must see the recovered corpus.
	var wal *stburst.WAL
	if *walDir != "" {
		start = time.Now()
		walOpts := []stburst.WALOption{stburst.WithWALSync(walSync)}
		if *walPrune {
			walOpts = append(walOpts, stburst.WithWALPrune(*corpus))
		}
		wal, err = stburst.OpenWAL(*walDir, walOpts...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.ReplayWAL(context.Background(), wal)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Batches > 0 {
			log.Printf("wal %s: replayed %d batches (%d docs) in %v",
				*walDir, rep.Batches, rep.Docs, time.Since(start).Round(time.Millisecond))
		} else {
			log.Printf("wal %s: nothing to replay", *walDir)
		}
	}

	store, err := loadOrMine(c, *snapshot, *method, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	if si := store.ShardInfo(); si.Sharded() {
		// A shard bundle holds one slice of a partitioned vocabulary; this
		// process is one member of a cluster behind stgate. Writes are
		// refused — an ingested document's terms would hash across every
		// shard, and a lone member re-mining its slice would fork the
		// set's shared generation — and the bundle must have been mined
		// from exactly this corpus, or the shard would answer with foreign
		// document IDs.
		if *ingest || *walDir != "" || connectorsEnabled {
			log.Fatalf("snapshot %s is shard %d/%d: a shard member is read-only (-ingest/-wal-dir/-tail/-listen-ingest are not allowed; ingest into an unsharded deployment and re-run stmine -shards)",
				*snapshot, si.Shard, si.Shards)
		}
		if si.CorpusFingerprint != "" && si.CorpusFingerprint != c.Checksum() {
			log.Fatalf("snapshot %s was mined from a different corpus (bundle fingerprint %.12s..., -corpus %.12s...)",
				*snapshot, si.CorpusFingerprint, c.Checksum())
		}
		log.Printf("serving shard %d/%d (%s, corpus fingerprint %.12s...)",
			si.Shard, si.Shards, si.Scheme, si.CorpusFingerprint)
	}
	start = time.Now()
	for _, kind := range store.Kinds() {
		ix := store.Index(kind)
		ix.Engine() // warm the cached search engines before accepting traffic
		log.Printf("index %s: %d terms, %d patterns, fingerprint %.12s...",
			kind, ix.NumTerms(), ix.NumPatterns(), ix.Fingerprint())
	}
	log.Printf("search engines built in %v", time.Since(start).Round(time.Millisecond))

	handler := serve.New(c, store, *snapshot)
	if *ingest || connectorsEnabled || wal != nil {
		// Every write path (HTTP ingest, streaming connectors, WAL
		// attach) re-mines dirty terms; give it the same worker budget
		// mining used — stores loaded from a snapshot have no recorded
		// options, so set them explicitly either way.
		store.SetMineOptions(stburst.NewMineOptions(stburst.WithParallelism(*parallel)))
	}
	var ing *stburst.Ingester
	if *ingest {
		opts := []stburst.IngesterOption{
			stburst.WithFlushDocs(*ingestBatch),
			stburst.WithOnFlush(func(res stburst.IngestResult, err error) {
				if err != nil {
					log.Printf("ingest flush failed: %v", err)
					return
				}
				log.Printf("ingested %d docs: %d dirty terms re-mined, generation %d",
					res.Docs, res.DirtyTerms, res.Generation)
			}),
		}
		if *ingestInterval > 0 {
			opts = append(opts, stburst.WithFlushInterval(*ingestInterval))
		}
		ing = stburst.NewIngester(store, opts...)
		handler.EnableIngest(ing)
		log.Printf("live ingestion enabled (batch %d, interval %v)", *ingestBatch, *ingestInterval)
	}
	if *subscriptions {
		// Bundles persist registered subscriptions; a loaded snapshot may
		// already carry standing queries from a previous run.
		store.SetSubscriptionLimit(*maxSubs)
		handler.EnableSubscriptions(sub.DispatcherOptions{AllowPrivate: *allowPrivate})
		if *allowPrivate {
			log.Printf("webhook SSRF guard disabled (-webhook-allow-private): deliveries to private addresses permitted")
		}
		if !*ingest {
			log.Printf("subscriptions enabled (%d registered) — note: without -ingest nothing re-mines, so alerts never fire", store.NumSubscriptions())
		} else {
			log.Printf("subscriptions enabled (%d registered)", store.NumSubscriptions())
		}
	}

	// Streaming connectors: each source gets its own dedicated Ingester
	// (sized so it never auto-flushes — the sink drives every flush
	// synchronously, which is the backpressure path) and delivers into
	// the same Store.Ingest → WAL → dirty-term re-mine path as
	// POST /v1/documents. Built and registered before traffic so metric
	// scrapes never race source registration; started only after the
	// WAL is attached so the first tailed batch is already durable.
	var (
		sup      *connector.Supervisor
		connIngs []*stburst.Ingester
	)
	if connectorsEnabled {
		sup = connector.NewSupervisor(connector.SupervisorConfig{Logf: log.Printf})
		newSink := func() *serve.IngestSink {
			ci := stburst.NewIngester(store, stburst.WithFlushDocs(1<<30))
			connIngs = append(connIngs, ci)
			return serve.NewIngestSink(c, ci)
		}
		if *tailPath != "" {
			cfg := connector.TailConfig{Path: *tailPath, CheckpointPath: *tailCkpt}
			src := connector.NewTailSource(cfg, newSink())
			sup.Add(src)
			ckpt := *tailCkpt
			if ckpt == "" {
				ckpt = *tailPath + ".checkpoint"
			}
			log.Printf("connector: tailing %s (checkpoint %s)", *tailPath, ckpt)
		}
		if *listenIngest != "" {
			cfg := connector.SocketConfig{Addr: *listenIngest, Framing: socketFraming}
			src := connector.NewSocketSource(cfg, newSink())
			sup.Add(src)
			log.Printf("connector: ingest socket on %s (%s framing)", *listenIngest, socketFraming)
		}
		handler.EnableConnectors(sup)
		if *walDir == "" {
			log.Printf("connectors run without -wal-dir: ingested documents are memory-only and a crash loses them")
		}
	}

	// Recovery phase 2: with the indexes resident and the mine options
	// recorded, re-mine whatever the snapshot had not absorbed, restore
	// the pre-crash generation and arm logging for live ingestion.
	if wal != nil {
		att, err := store.AttachWAL(context.Background(), wal)
		if err != nil {
			log.Fatal(err)
		}
		if att.Batches > 0 {
			log.Printf("wal attached: %d replayed batches, %d dirty terms re-mined, generation %d restored (fsync %s)",
				att.Batches, att.DirtyTerms, att.Generation, *fsync)
		} else {
			log.Printf("wal attached: logging ingest batches (fsync %s)", *fsync)
		}
	}

	if sup != nil {
		sup.Start(context.Background())
		log.Printf("connectors: %d source(s) supervised", sup.NumSources())
	}

	// The periodic saver exists for -wal-prune: every successful save
	// absorbs the sealed segments into the corpus file and deletes them,
	// so under sustained connector ingestion the log stays bounded.
	var pruneStop, pruneDone chan struct{}
	if *walPruneIvl > 0 {
		pruneStop, pruneDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(pruneDone)
			t := time.NewTicker(*walPruneIvl)
			defer t.Stop()
			for {
				select {
				case <-pruneStop:
					return
				case <-t.C:
					if err := store.SaveFile(*snapshot); err != nil {
						log.Printf("periodic snapshot save: %v", err)
					} else {
						log.Printf("snapshot %s re-saved; sealed wal segments absorbed into %s", *snapshot, *corpus)
					}
				}
			}
		}()
		log.Printf("wal pruning armed: re-saving %s every %v", *snapshot, *walPruneIvl)
	}

	if *debugAddr != "" {
		// pprof gets its own listener so profiling can be bound to
		// loopback while queries stay public; a failure here is fatal —
		// an operator who asked for profiling must not silently run
		// without it.
		dbg := &http.Server{Addr: *debugAddr, Handler: handler.DebugHandler()}
		go func() {
			log.Printf("debug listener (pprof, /metrics) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("debug listener: %v", err)
			}
		}()
	}

	log.Printf("listening on %s", *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Queries answer in microseconds; anything holding a connection
		// for seconds is a stalled or malicious client, and a
		// long-running service must not pin goroutines on them.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	err = listenAndDrain(srv)
	if sup != nil {
		// Stop the sources first: each drains its buffered batch through
		// its sink before exiting, and nothing may write after the
		// ingesters close.
		sup.Stop()
	}
	for _, ci := range connIngs {
		if cerr := ci.Close(); cerr != nil {
			log.Printf("closing connector ingester: %v", cerr)
		}
	}
	if ing != nil {
		// Drain whatever the batcher still buffers: a rolling restart
		// must not drop accepted documents.
		if cerr := ing.Close(); cerr != nil {
			log.Printf("closing ingester: %v", cerr)
		}
	}
	if pruneStop != nil {
		// After the final flushes so a last save could still absorb
		// them, and strictly before the WAL closes.
		close(pruneStop)
		<-pruneDone
	}
	// After the final ingest flush, so its alerts still reach the queue;
	// draining the dispatcher delivers every queued webhook batch.
	handler.CloseSubscriptions()
	if wal != nil {
		// Only after the listener drained and the ingester flushed: the
		// last batch must hit the log before the log closes.
		if cerr := wal.Close(); cerr != nil {
			log.Printf("closing wal: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// listenAndDrain runs the HTTP server until it fails or the process
// receives SIGINT/SIGTERM, in which case the listener closes immediately
// and in-flight requests are drained (bounded by a timeout) before
// exiting — a rolling restart never kills a query mid-response.
func listenAndDrain(srv *http.Server) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately instead of draining
		log.Printf("shutting down: draining in-flight requests")
		drain, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(drain); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Printf("drained; bye")
		return <-errc
	}
}

// loadOrMine restores the pattern store from the snapshot/bundle when
// one exists, and otherwise mines the corpus — all three kinds in one
// pass for -method all — writing the freshly mined artifact back to the
// snapshot path (when given) so subsequent boots load instead of mining.
func loadOrMine(c *stburst.Collection, path, method string, parallel int) (*stburst.Store, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			start := time.Now()
			store, err := stburst.LoadStore(f, c)
			if err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", path, err)
			}
			log.Printf("snapshot %s loaded in %v", path, time.Since(start).Round(time.Millisecond))
			return store, nil
		case !os.IsNotExist(err):
			return nil, err
		}
		log.Printf("snapshot %s does not exist; mining corpus", path)
	}

	start := time.Now()
	opts := stburst.NewMineOptions(stburst.WithParallelism(parallel))
	if method == "all" {
		store, err := c.MineStore(context.Background(), opts)
		if err != nil {
			return nil, err
		}
		log.Printf("mined all kinds in %v", time.Since(start).Round(time.Millisecond))
		if path != "" {
			if err := store.SaveFile(path); err != nil {
				return nil, err
			}
			log.Printf("bundle written to %s", path)
		}
		return store, nil
	}

	kind, err := stburst.ParseKind(method)
	if err != nil || kind == stburst.KindAny {
		return nil, fmt.Errorf("-method must name a concrete kind or \"all\", got %q", method)
	}
	ix, err := c.Mine(context.Background(), kind, opts)
	if err != nil {
		return nil, err
	}
	log.Printf("mined %d terms in %v", ix.NumTerms(), time.Since(start).Round(time.Millisecond))

	if path != "" {
		if err := ix.SaveFile(path); err != nil {
			return nil, err
		}
		log.Printf("snapshot written to %s", path)
	}
	store := stburst.NewStore(c)
	if _, err := store.Swap(kind, ix); err != nil {
		return nil, err
	}
	return store, nil
}
