// Command stbench regenerates the tables and figures of the paper's
// experimental evaluation (§6 of "On the Spatiotemporal Burstiness of
// Terms", VLDB 2012).
//
// Usage:
//
//	stbench [-exp all|table1|table2|table3|table9|fig4|fig5|fig6|fig7|fig8|fig9]
//	        [-full] [-seed N] [-articles N] [-vocab N]
//
// Every experiment is deterministic for a given seed. -full switches
// Table 2 and Figure 8 to the paper's full-scale parameters (slow) and
// the corpus experiments to the paper's 305k-article scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stburst/internal/exp"
	"stburst/internal/gen"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment to run: all, table1, table2, table3, table9, fig4..fig9")
		full     = flag.Bool("full", false, "use the paper's full-scale parameters (slow)")
		seed     = flag.Int64("seed", 1, "random seed")
		articles = flag.Float64("articles", 0, "mean background articles per country-week (0 = default; 35 matches the paper's 305k)")
		vocab    = flag.Int("vocab", 0, "background vocabulary size (0 = default)")
		parallel = flag.Int("parallel", 0, "corpus-mining workers (<1 = one per CPU, 1 = sequential)")
	)
	flag.Parse()

	cfg := gen.TopixConfig{Seed: *seed, WeeklyArticles: *articles, Vocab: *vocab}
	if *full && cfg.WeeklyArticles == 0 {
		cfg.WeeklyArticles = 35
	}

	needLab := false
	for _, e := range []string{"all", "table1", "table3", "fig4", "fig5", "fig6", "fig7"} {
		if *which == e {
			needLab = true
		}
	}
	var lab *exp.Lab
	if needLab {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "generating Topix-like corpus (seed %d) and mining all pattern sets (%s)...\n",
			*seed, workersLabel(*parallel))
		var err error
		lab, err = exp.NewLabPar(cfg, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "corpus ready: %d documents, %d streams, %d weeks (%v)\n\n",
			lab.Col().NumDocs(), lab.Col().NumStreams(), lab.Col().Length(), time.Since(start).Round(time.Millisecond))
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Println("== Table 1: Top-Scoring Bursty Source Patterns ==")
			fmt.Println(exp.FormatTable1(exp.Table1(lab)))
		case "table2":
			fmt.Println("== Table 2: Spatiotemporal pattern retrieval ==")
			c := exp.Table2Config{Seed: *seed}
			if *full {
				c = exp.FullTable2
			}
			c.Workers = *parallel
			fmt.Println(exp.FormatTable2(exp.Table2(c)))
		case "table3":
			fmt.Println("== Table 3: Precision in top-10 documents ==")
			fmt.Println(exp.FormatTable3(exp.Table3(lab, 10)))
		case "table9":
			fmt.Println("== Table 9: Major Events List ==")
			fmt.Println(exp.FormatTable9())
		case "fig4":
			fmt.Println("== Figure 4: Timeframe length of the top pattern ==")
			fmt.Println(exp.FormatFig4(exp.Fig4(lab)))
		case "fig5":
			fmt.Println("== Figure 5: Bursty rectangles per term per timestamp ==")
			fmt.Println(exp.FormatFig5(exp.Fig5(lab)))
		case "fig6":
			fmt.Println("== Figure 6: Open spatiotemporal windows ==")
			fmt.Println(exp.FormatFig6(exp.Fig6(lab)))
		case "fig7":
			fmt.Println("== Figure 7: Running time per timestamp ==")
			fmt.Println(exp.FormatFig7(exp.Fig7(lab, 150)))
		case "fig8":
			fmt.Println("== Figure 8: Running time vs number of streams ==")
			c := exp.Fig8Config{Seed: *seed}
			if *full {
				c.Sizes = exp.FullFig8Sizes
			}
			fmt.Println(exp.FormatFig8(exp.Fig8(c)))
		case "fig9":
			fmt.Println("== Figure 9: Weibull PDF envelopes ==")
			fmt.Println(exp.FormatFig9(exp.Fig9()))
		default:
			fmt.Fprintf(os.Stderr, "stbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *which == "all" {
		for _, name := range []string{"table9", "table1", "fig4", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9"} {
			run(name)
		}
		return
	}
	run(*which)
}

func workersLabel(parallel int) string {
	if parallel == 1 {
		return "sequential"
	}
	if parallel < 1 {
		return fmt.Sprintf("%d workers", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("%d workers", parallel)
}
