package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/url"
	"strings"

	"stburst"
	"stburst/internal/gen"
	"stburst/internal/geo"
)

// The route labels of every request stload can send, written exactly as
// stserve's mux patterns so the report's per-route sections line up with
// the server's /metrics series.
const (
	routeSearch     = "POST /v1/search"
	routePatterns   = "GET /v1/patterns/{term}"
	routeStats      = "GET /v1/stats"
	routeGeneration = "GET /v1/generation"
	routeDocuments  = "POST /v1/documents"
	routeSubCreate  = "POST /v1/subscriptions"
	routeSubList    = "GET /v1/subscriptions"
	routeSubGet     = "GET /v1/subscriptions/{id}"
	routeSubDelete  = "DELETE /v1/subscriptions/{id}"
)

var allRoutes = []string{
	routeSearch, routePatterns, routeStats, routeGeneration, routeDocuments,
	routeSubCreate, routeSubList, routeSubGet, routeSubDelete,
}

// op is one fully materialized request: everything about it — route,
// method, path, body — is a pure function of (seed, op index), so a run
// with a fixed -requests count sends exactly the same set of requests no
// matter how many workers race to claim indexes.
type op struct {
	route  string
	method string
	path   string
	body   []byte
	docs   int // documents carried (ingest ops only)
}

// hash folds the request into one order-independent trace contribution.
func (o op) hash() uint64 {
	h := fnv.New64a()
	io.WriteString(h, o.method)
	h.Write([]byte{0})
	io.WriteString(h, o.path)
	h.Write([]byte{0})
	h.Write(o.body)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// turns (seed, counter) pairs into independent per-op RNG seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// workload synthesizes the request mix from the same world model the
// corpus generator uses: event query terms and episode geography from
// gen.Events, the background vocabulary's "w%04d" zipf tail, and — for
// aiming regional hotspot queries — the exact seed-1 MDS projection
// corpusio.Load stamps onto every topix corpus (topix streams are always
// the full country list, so the projection is reproducible client-side
// without ever seeing the corpus).
type workload struct {
	cfg          config
	pts          []geo.Point // projected country locations, by gen.Countries index
	minX, minY   float64
	spanX, spanY float64
}

func newWorkload(cfg config) (*workload, error) {
	coords := make([]geo.LatLon, len(gen.Countries))
	for i, c := range gen.Countries {
		coords[i] = c.Geo
	}
	pts, err := geo.MDS(geo.DistanceMatrix(coords, geo.Haversine), rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, fmt.Errorf("projecting countries: %w", err)
	}
	w := &workload{cfg: cfg, pts: pts}
	w.minX, w.minY = pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		w.minX = min(w.minX, p.X)
		w.minY = min(w.minY, p.Y)
		maxX = max(maxX, p.X)
		maxY = max(maxY, p.Y)
	}
	w.spanX, w.spanY = maxX-w.minX, maxY-w.minY
	return w, nil
}

// op materializes request i. The mix: -write-fraction of the ops are
// ingest bursts, -subscribe-fraction are standing-query CRUD, and the
// read remainder splits 60% zipf term queries, 25% regional hotspot
// queries, 10% pattern lookups, 5% stats/generation.
func (w *workload) op(i uint64) op {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(w.cfg.seed) ^ mix64(i)))))
	r := rng.Float64()
	if r < w.cfg.writeFraction {
		return w.ingestOp(rng)
	}
	if r < w.cfg.writeFraction+w.cfg.subscribeFraction {
		return w.subscribeOp(rng)
	}
	r = (r - w.cfg.writeFraction - w.cfg.subscribeFraction) /
		(1 - w.cfg.writeFraction - w.cfg.subscribeFraction)
	switch {
	case r < 0.60:
		return w.termQueryOp(rng)
	case r < 0.85:
		return w.hotspotOp(rng)
	case r < 0.95:
		return w.patternsOp(rng)
	default:
		return w.statsOp(rng)
	}
}

// backgroundWord draws from the corpus's zipf background vocabulary
// (same 1.2/4 shape the generator uses), so hot terms get queried hot.
func (w *workload) backgroundWord(rng *rand.Rand) string {
	z := rand.NewZipf(rng, 1.2, 4, uint64(w.cfg.vocab-1))
	return fmt.Sprintf("w%04d", z.Uint64())
}

func (w *workload) event(rng *rand.Rand) gen.Event {
	return gen.Events[rng.Intn(len(gen.Events))]
}

func (w *workload) termQueryOp(rng *rand.Rand) op {
	q := stburst.Query{K: 10}
	if rng.Float64() < 0.7 {
		q.Text = strings.Join(w.event(rng).Query, " ")
	} else {
		q.Text = w.backgroundWord(rng)
	}
	return jsonOp(routeSearch, "POST", "/v1/search", q, 0)
}

// hotspotOp aims a region+timeframe query at an event episode: a
// rectangle around the epicenter's projected location, a window around
// the episode's weeks — the query shape the paper's retrieval model
// (§5) exists to answer.
func (w *workload) hotspotOp(rng *rand.Rand) op {
	ev := w.event(rng)
	ep := ev.Episodes[rng.Intn(len(ev.Episodes))]
	p := w.pts[gen.CountryIndex(ep.Epicenter)]
	f := 0.03 + 0.09*rng.Float64()
	start := ep.Start
	if start >= w.cfg.timeline {
		start = rng.Intn(w.cfg.timeline)
	}
	end := start + max(ep.Length, 1) + rng.Intn(4)
	if end >= w.cfg.timeline {
		end = w.cfg.timeline - 1
	}
	q := stburst.Query{
		Text: strings.Join(ev.Query, " "),
		Region: &stburst.Rect{
			MinX: p.X - f*w.spanX, MinY: p.Y - f*w.spanY,
			MaxX: p.X + f*w.spanX, MaxY: p.Y + f*w.spanY,
		},
		Time: &stburst.Timespan{Start: start, End: end},
		K:    10,
	}
	return jsonOp(routeSearch, "POST", "/v1/search", q, 0)
}

func (w *workload) patternsOp(rng *rand.Rand) op {
	var term string
	if rng.Float64() < 0.8 {
		q := w.event(rng).Query
		term = q[rng.Intn(len(q))]
	} else {
		term = w.backgroundWord(rng)
	}
	return op{route: routePatterns, method: "GET", path: "/v1/patterns/" + url.PathEscape(term)}
}

// subscribeOp exercises the standing-query CRUD surface (server must
// run -subscriptions): mostly registrations of event-derived predicates
// (SSE-only — load runs have no webhook sink), the rest list/fetch/
// delete. Fetch and delete draw IDs from a small deterministic range, so
// some hit subscriptions this very run registered and the rest are
// honest 404s — both are valid outcomes the report tallies.
func (w *workload) subscribeOp(rng *rand.Rand) op {
	r := rng.Float64()
	switch {
	case r < 0.40:
		ev := w.event(rng)
		spec := stburst.Subscription{
			Owner:    "stload",
			Terms:    []string{ev.Query[rng.Intn(len(ev.Query))]},
			MinScore: rng.Float64(),
		}
		if rng.Float64() < 0.5 {
			spec.Kind = stburst.Kinds()[rng.Intn(len(stburst.Kinds()))]
		}
		return jsonOp(routeSubCreate, "POST", "/v1/subscriptions", spec, 0)
	case r < 0.60:
		return op{route: routeSubList, method: "GET", path: "/v1/subscriptions"}
	case r < 0.80:
		return op{route: routeSubGet, method: "GET", path: fmt.Sprintf("/v1/subscriptions/%d", 1+rng.Intn(64))}
	default:
		return op{route: routeSubDelete, method: "DELETE", path: fmt.Sprintf("/v1/subscriptions/%d", 1+rng.Intn(64))}
	}
}

func (w *workload) statsOp(rng *rand.Rand) op {
	if rng.Float64() < 0.5 {
		return op{route: routeStats, method: "GET", path: "/v1/stats"}
	}
	return op{route: routeGeneration, method: "GET", path: "/v1/generation"}
}

// documentJSON and documentsRequest mirror stserve's POST /v1/documents
// body shape.
type documentJSON struct {
	Stream string `json:"stream"`
	Time   int    `json:"time"`
	Text   string `json:"text"`
}

type documentsRequest struct {
	Documents []documentJSON `json:"documents"`
}

// ingestOp synthesizes a burst of 1-4 articles about one event episode:
// mostly from the epicenter country during the episode's weeks, with the
// occasional far-away pickup — the same shape the generator's reach
// model produces, so re-mining sees plausible dirty terms.
func (w *workload) ingestOp(rng *rand.Rand) op {
	ev := w.event(rng)
	ep := ev.Episodes[rng.Intn(len(ev.Episodes))]
	docs := make([]documentJSON, 1+rng.Intn(4))
	for j := range docs {
		country := ep.Epicenter
		if rng.Float64() < 0.3 {
			country = gen.Countries[rng.Intn(len(gen.Countries))].Name
		}
		t := ep.Start + rng.Intn(max(ep.Length, 1))
		if t >= w.cfg.timeline {
			t = rng.Intn(w.cfg.timeline)
		}
		words := append([]string(nil), ev.Query...)
		for k, n := 0, 3+rng.Intn(6); k < n; k++ {
			words = append(words, w.backgroundWord(rng))
		}
		docs[j] = documentJSON{Stream: country, Time: t, Text: strings.Join(words, " ")}
	}
	return jsonOp(routeDocuments, "POST", "/v1/documents", documentsRequest{Documents: docs}, len(docs))
}

func jsonOp(route, method, path string, payload any, docs int) op {
	body, err := json.Marshal(payload)
	if err != nil {
		panic(err) // all payload types marshal by construction
	}
	return op{route: route, method: method, path: path, body: body, docs: docs}
}
