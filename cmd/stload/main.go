// Command stload drives mixed read/write traffic against a live stserve
// and reports per-route latency distributions — the load half of the
// serving harness (stserve's /metrics is the other half: after a run,
// the server's request counters must equal the report's sent totals).
//
// Usage:
//
//	stserve -corpus corpus.jsonl -snapshot corpus.bundle -ingest &
//	stload -target http://localhost:8080 -duration 30s -concurrency 16
//	stload -target http://localhost:8080 -requests 10000 -seed 1 -o report.json
//
// The target can equally be an stgate coordinator fronting a sharded
// cluster — the read surface is identical. Either way the report's
// topology header records what /v1/stats said was under load (docs,
// generation, shard count, member URLs), so a gateway benchmark is
// never mistaken for a single-node one.
//
// The workload is synthesized from the same world model that generates
// topix corpora: zipf term queries over the background vocabulary and
// the Major Events' query terms, regional hotspot queries aimed at
// event epicenters through the corpus's own seed-1 MDS projection,
// pattern and stats lookups, and — when -write-fraction is non-zero —
// ingest bursts of synthesized articles (requires a server started with
// -ingest, and assumes a topix corpus so the country stream names
// resolve).
//
// Every request is a pure function of (-seed, op index): a fixed
// -requests run sends exactly the same request set every time, no
// matter the concurrency, and stamps an order-independent trace
// fingerprint into the report to prove it. -duration runs instead send
// as many ops as fit the wall clock.
//
// Two dispatch modes: closed-loop by default (-concurrency workers,
// each sending the next op as soon as its previous response lands — the
// throughput-probing mode), or open-loop with -rate R (ops dispatched
// on a fixed schedule regardless of response latency — the
// latency-under-offered-load mode, immune to coordinated omission).
//
// The JSON report (stdout, or -o) carries config, the workload
// composition, error counts, and per-route p50/p90/p99/p999 latencies.
// Exit status: 0 on a clean run, 1 when any transport error occurred
// (HTTP error statuses are recorded in the report but are the
// workload's business — a 404 pattern lookup is a valid answer), 2 on
// flag errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"stburst/internal/metrics"
)

type config struct {
	target            string
	seed              int64
	requests          int
	duration          time.Duration
	concurrency       int
	rate              float64
	writeFraction     float64
	subscribeFraction float64
	vocab             int
	timeline          int
	out               string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(stderr, "stload: %v\n", err)
		return 2
	}

	w, err := newWorkload(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "stload: %v\n", err)
		return 1
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.concurrency * 2,
			MaxIdleConnsPerHost: cfg.concurrency * 2,
		},
	}
	if err := healthcheck(client, cfg.target); err != nil {
		fmt.Fprintf(stderr, "stload: %v\n", err)
		return 1
	}
	topo, err := probeTopology(client, cfg.target)
	if err != nil {
		fmt.Fprintf(stderr, "stload: %v\n", err)
		return 1
	}

	res := execute(client, cfg, w)

	rep := buildReport(cfg, topo, res)
	enc, err := marshalReport(rep)
	if err != nil {
		fmt.Fprintf(stderr, "stload: encoding report: %v\n", err)
		return 1
	}
	outw := stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			fmt.Fprintf(stderr, "stload: %v\n", err)
			return 1
		}
		defer f.Close()
		outw = f
	}
	if _, err := outw.Write(enc); err != nil {
		fmt.Fprintf(stderr, "stload: writing report: %v\n", err)
		return 1
	}

	if rep.Outcome.TransportErrors > 0 {
		fmt.Fprintf(stderr, "stload: %d transport errors\n", rep.Outcome.TransportErrors)
		return 1
	}
	return 0
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("stload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.target, "target", "", "base URL of the stserve under load (required)")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload seed: fixed seed + fixed -requests = identical request set")
	fs.IntVar(&cfg.requests, "requests", 0, "send exactly this many requests (mutually exclusive with -duration)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "run for this long (ignored when -requests is set)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop worker count (and open-loop in-flight cap)")
	fs.Float64Var(&cfg.rate, "rate", 0, "open-loop dispatch rate in requests/sec (0 = closed loop)")
	fs.Float64Var(&cfg.writeFraction, "write-fraction", 0, "fraction of ops that are ingest bursts (server must run -ingest)")
	fs.Float64Var(&cfg.subscribeFraction, "subscribe-fraction", 0, "fraction of ops that are subscription CRUD (server must run -subscriptions)")
	fs.IntVar(&cfg.vocab, "vocab", 6000, "background vocabulary size of the corpus under load")
	fs.IntVar(&cfg.timeline, "timeline", 48, "timeline length of the corpus under load")
	fs.StringVar(&cfg.out, "o", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	fail := func(format string, a ...any) (config, error) {
		fs.Usage()
		return cfg, fmt.Errorf(format, a...)
	}
	if cfg.target == "" {
		return fail("-target is required")
	}
	if cfg.requests < 0 {
		return fail("-requests must be non-negative, got %d", cfg.requests)
	}
	durationSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "duration" {
			durationSet = true
		}
	})
	if cfg.requests > 0 && durationSet {
		return fail("-requests and -duration are mutually exclusive")
	}
	if cfg.requests == 0 && cfg.duration <= 0 {
		return fail("-duration must be positive, got %v", cfg.duration)
	}
	if cfg.concurrency < 1 {
		return fail("-concurrency must be at least 1, got %d", cfg.concurrency)
	}
	if cfg.rate < 0 {
		return fail("-rate must be non-negative, got %v", cfg.rate)
	}
	if cfg.writeFraction < 0 || cfg.writeFraction > 1 {
		return fail("-write-fraction must be in [0, 1], got %v", cfg.writeFraction)
	}
	if cfg.subscribeFraction < 0 || cfg.subscribeFraction > 1 {
		return fail("-subscribe-fraction must be in [0, 1], got %v", cfg.subscribeFraction)
	}
	if cfg.writeFraction+cfg.subscribeFraction > 1 {
		return fail("-write-fraction plus -subscribe-fraction must not exceed 1, got %v",
			cfg.writeFraction+cfg.subscribeFraction)
	}
	if cfg.vocab < 2 {
		return fail("-vocab must be at least 2, got %d", cfg.vocab)
	}
	if cfg.timeline < 1 {
		return fail("-timeline must be at least 1, got %d", cfg.timeline)
	}
	return cfg, nil
}

func healthcheck(client *http.Client, target string) error {
	resp, err := client.Get(target + "/v1/healthz")
	if err != nil {
		return fmt.Errorf("target unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("target unhealthy: GET /v1/healthz = %d", resp.StatusCode)
	}
	return nil
}

// probeTopology asks the target who it is via /v1/stats and distills the
// answer into the report's topology header. A lone stserve describes
// itself under "shard"; an stgate coordinator describes the cluster
// under "cluster" — either way the report records how many shards the
// run actually exercised, so a gateway benchmark is never mistaken for
// a single-node one.
func probeTopology(client *http.Client, target string) (reportTopology, error) {
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return reportTopology{}, fmt.Errorf("probing topology: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return reportTopology{}, fmt.Errorf("probing topology: GET /v1/stats = %d", resp.StatusCode)
	}
	var raw struct {
		Docs       int    `json:"docs"`
		Streams    int    `json:"streams"`
		Timeline   int    `json:"timeline"`
		Generation uint64 `json:"generation"`
		Shard      *struct {
			Shards      int    `json:"shards"`
			Scheme      string `json:"scheme"`
			Fingerprint string `json:"fingerprint"`
		} `json:"shard"`
		Cluster *struct {
			Shards      int    `json:"shards"`
			Scheme      string `json:"scheme"`
			Fingerprint string `json:"fingerprint"`
			Members     []struct {
				URL string `json:"url"`
			} `json:"members"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return reportTopology{}, fmt.Errorf("probing topology: decoding /v1/stats: %w", err)
	}
	topo := reportTopology{
		Docs:       raw.Docs,
		Streams:    raw.Streams,
		Timeline:   raw.Timeline,
		Generation: raw.Generation,
		Shards:     1,
	}
	switch {
	case raw.Cluster != nil:
		topo.Shards = raw.Cluster.Shards
		topo.Scheme = raw.Cluster.Scheme
		topo.Fingerprint = raw.Cluster.Fingerprint
		for _, m := range raw.Cluster.Members {
			topo.Members = append(topo.Members, m.URL)
		}
	case raw.Shard != nil:
		if raw.Shard.Shards > 0 {
			topo.Shards = raw.Shard.Shards
		}
		topo.Scheme = raw.Shard.Scheme
		topo.Fingerprint = raw.Shard.Fingerprint
	}
	return topo, nil
}

// routeTally accumulates one route's results. All fields are atomics —
// workers never share locks on the hot path (the histogram is the same
// allocation-free type stserve records into).
type routeTally struct {
	sent      atomic.Int64
	transport atomic.Int64
	byClass   [5]atomic.Int64
	hist      *metrics.Histogram
}

type runResult struct {
	stats   map[string]*routeTally
	trace   atomic.Uint64 // order-independent fingerprint accumulator
	docs    atomic.Int64
	ops     atomic.Int64
	elapsed time.Duration
}

func newRunResult() *runResult {
	res := &runResult{stats: make(map[string]*routeTally, len(allRoutes))}
	for _, r := range allRoutes {
		res.stats[r] = &routeTally{hist: metrics.NewHistogram(r, metrics.DefLatencyBuckets)}
	}
	return res
}

// execute dispatches the run: closed loop (workers claim op indexes off
// a shared counter and block on their own responses) or, with -rate,
// open loop (a ticker dispatches on schedule into a bounded in-flight
// pool, so a slow server cannot slow the offered load).
func execute(client *http.Client, cfg config, w *workload) *runResult {
	res := newRunResult()
	start := time.Now()
	deadline := start.Add(cfg.duration)
	stop := func(i uint64) bool {
		if cfg.requests > 0 {
			return i >= uint64(cfg.requests)
		}
		return time.Now().After(deadline)
	}

	if cfg.rate > 0 {
		interval := time.Duration(float64(time.Second) / cfg.rate)
		sem := make(chan struct{}, cfg.concurrency)
		var wg sync.WaitGroup
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := uint64(0); !stop(i); i++ {
			<-tick.C
			sem <- struct{}{}
			wg.Add(1)
			go func(i uint64) {
				defer func() { <-sem; wg.Done() }()
				doOp(client, cfg.target, w.op(i), res)
			}(i)
		}
		wg.Wait()
	} else {
		var next atomic.Uint64
		var wg sync.WaitGroup
		for g := 0; g < cfg.concurrency; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if stop(i) {
						return
					}
					doOp(client, cfg.target, w.op(i), res)
				}
			}()
		}
		wg.Wait()
	}
	res.elapsed = time.Since(start)
	return res
}

func doOp(client *http.Client, target string, o op, res *runResult) {
	st := res.stats[o.route]
	st.sent.Add(1)
	res.ops.Add(1)
	res.docs.Add(int64(o.docs))
	// XOR-sum of scrambled op hashes: commutative, so racing workers
	// produce the same fingerprint for the same request set.
	res.trace.Add(o.hash())

	var body io.Reader
	if o.body != nil {
		body = bytes.NewReader(o.body)
	}
	req, err := http.NewRequest(o.method, target+o.path, body)
	if err != nil {
		st.transport.Add(1)
		return
	}
	if o.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(t0).Seconds()
	if err != nil {
		st.transport.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st.hist.Observe(elapsed)
	if cls := resp.StatusCode/100 - 1; cls >= 0 && cls < len(st.byClass) {
		st.byClass[cls].Add(1)
	}
}

func marshalReport(rep report) ([]byte, error) {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

func buildReport(cfg config, topo reportTopology, res *runResult) report {
	rep := report{
		Topology: topo,
		Config: reportConfig{
			Target:            cfg.target,
			Seed:              cfg.seed,
			Requests:          cfg.requests,
			Concurrency:       cfg.concurrency,
			Rate:              cfg.rate,
			WriteFraction:     cfg.writeFraction,
			SubscribeFraction: cfg.subscribeFraction,
			Vocab:             cfg.vocab,
			Timeline:          cfg.timeline,
		},
		Workload: reportWorkload{
			Ops:              int(res.ops.Load()),
			OpsByRoute:       make(map[string]int),
			DocsSent:         int(res.docs.Load()),
			TraceFingerprint: fmt.Sprintf("%016x", res.trace.Load()),
		},
		Outcome: reportOutcome{StatusByClass: make(map[string]int)},
		Timing: reportTiming{
			ElapsedSeconds: res.elapsed.Seconds(),
			Routes:         make(map[string]routeLatency),
		},
	}
	if cfg.requests == 0 {
		rep.Config.Duration = cfg.duration.String()
	}
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for _, route := range allRoutes {
		st := res.stats[route]
		sent := int(st.sent.Load())
		if sent == 0 {
			continue
		}
		rep.Workload.OpsByRoute[route] = sent
		rep.Outcome.TransportErrors += int(st.transport.Load())
		for i, class := range classes {
			if n := int(st.byClass[i].Load()); n > 0 {
				rep.Outcome.StatusByClass[class] += n
			}
		}
		h := st.hist
		if h.Count() == 0 {
			// Every attempt failed in transport: quantiles would be NaN,
			// which JSON cannot carry.
			continue
		}
		rep.Timing.Routes[route] = routeLatency{
			Count:  int(h.Count()),
			MeanMs: h.Mean() * 1e3,
			P50Ms:  h.Quantile(0.50) * 1e3,
			P90Ms:  h.Quantile(0.90) * 1e3,
			P99Ms:  h.Quantile(0.99) * 1e3,
			P999Ms: h.Quantile(0.999) * 1e3,
			MaxMs:  h.Max() * 1e3,
		}
	}
	if s := res.elapsed.Seconds(); s > 0 {
		rep.Timing.QPS = float64(res.ops.Load()) / s
	}
	rep.Outcome.Subscriptions = subscriptionOutcomes(res)
	return rep
}

// subscriptionOutcomes distills the CRUD op classes' per-status tallies
// into the report's subscription outcome section: how many registrations
// stuck, how many were rejected, and how many fetch/delete probes found
// nothing. Absent entirely when the run sent no subscription ops.
func subscriptionOutcomes(res *runResult) *reportSubscriptions {
	sent := func(route string) int { return int(res.stats[route].sent.Load()) }
	cls := func(route string, i int) int { return int(res.stats[route].byClass[i].Load()) }
	if sent(routeSubCreate)+sent(routeSubList)+sent(routeSubGet)+sent(routeSubDelete) == 0 {
		return nil
	}
	return &reportSubscriptions{
		Creates:  sent(routeSubCreate),
		Created:  cls(routeSubCreate, 1), // 2xx
		Rejected: cls(routeSubCreate, 3), // 4xx: invalid spec or sealed surface
		Lists:    sent(routeSubList),
		Fetches:  sent(routeSubGet),
		Deletes:  sent(routeSubDelete),
		Deleted:  cls(routeSubDelete, 1),
		NotFound: cls(routeSubGet, 3) + cls(routeSubDelete, 3),
	}
}
