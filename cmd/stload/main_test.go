package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"stburst"
	"stburst/internal/gen"
	"stburst/internal/serve"
	"stburst/internal/sub"
)

// bootTarget generates a small topix corpus (the full 181-country
// stream set, so stload's synthesized ingest streams resolve), round
// trips it through the JSONL interchange format exactly like
// stgen | stserve would, mines a regional index, and boots the real
// serve handler on an httptest listener with ingestion armed. The
// result is a live stserve in-process — the CI smoke needs no separate
// binary or port management.
var bootOnce struct {
	sync.Mutex
	corpus []byte
}

func corpusJSONL(t *testing.T) []byte {
	t.Helper()
	bootOnce.Lock()
	defer bootOnce.Unlock()
	if bootOnce.corpus != nil {
		return bootOnce.corpus
	}
	tp, err := gen.NewTopix(gen.TopixConfig{
		Seed:             1,
		WeeklyArticles:   0.4,
		Vocab:            300,
		TokensPerArticle: 8,
		RetainCounts:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := tp.Col
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	h := struct {
		Kind     string   `json:"kind"`
		Streams  []string `json:"streams"`
		Timeline int      `json:"timeline"`
	}{Kind: "topix", Timeline: col.Length()}
	for i := 0; i < col.NumStreams(); i++ {
		h.Streams = append(h.Streams, col.Stream(i).Name)
	}
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < col.NumDocs(); id++ {
		d := col.Doc(id)
		counts := make(map[string]int, len(d.Counts))
		for term, n := range d.Counts {
			counts[col.Dict().Term(term)] = n
		}
		line := struct {
			Stream string         `json:"stream"`
			Time   int            `json:"time"`
			Counts map[string]int `json:"counts"`
			Event  int            `json:"event"`
		}{Stream: col.Stream(d.Stream).Name, Time: d.Time, Counts: counts, Event: tp.Labels[id]}
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	bootOnce.corpus = buf.Bytes()
	return bootOnce.corpus
}

func bootTarget(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	c, err := stburst.LoadCorpus(bytes.NewReader(corpusJSONL(t)))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.Mine(context.Background(), stburst.KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := stburst.NewStore(c)
	if _, err := store.Swap(stburst.KindRegional, ix); err != nil {
		t.Fatal(err)
	}
	handler := serve.New(c, store, "")
	// Batch flushes: every flush re-mines the dirty terms over all 181
	// streams, and the smoke's ~45 ingest requests would otherwise spend
	// half a minute re-mining one burst at a time.
	ing := stburst.NewIngester(store, stburst.WithFlushDocs(16))
	handler.EnableIngest(ing)
	handler.EnableSubscriptions(sub.DispatcherOptions{})
	t.Cleanup(func() {
		ing.Close()
		handler.CloseSubscriptions()
	})
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts, handler
}

func runLoad(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no target", []string{"-requests", "10"}},
		{"negative requests", []string{"-target", "http://x", "-requests", "-1"}},
		{"requests and duration", []string{"-target", "http://x", "-requests", "10", "-duration", "5s"}},
		{"zero duration", []string{"-target", "http://x", "-duration", "0s"}},
		{"negative rate", []string{"-target", "http://x", "-rate", "-5"}},
		{"bad write fraction", []string{"-target", "http://x", "-write-fraction", "1.5"}},
		{"bad subscribe fraction", []string{"-target", "http://x", "-subscribe-fraction", "1.5"}},
		{"fractions exceed 1", []string{"-target", "http://x", "-write-fraction", "0.6", "-subscribe-fraction", "0.6"}},
		{"zero concurrency", []string{"-target", "http://x", "-concurrency", "0"}},
		{"tiny vocab", []string{"-target", "http://x", "-vocab", "1"}},
		{"unknown flag", []string{"-target", "http://x", "-frobnicate"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runLoad(t, tc.args...)
			if code != 2 {
				t.Errorf("run(%v) = %d, want exit 2", tc.args, code)
			}
			if stdout != "" {
				t.Errorf("flag error wrote to stdout: %q", stdout)
			}
			if !strings.Contains(stderr, "Usage of stload") && !strings.Contains(stderr, "flag") {
				t.Errorf("flag error did not print usage: %q", stderr)
			}
		})
	}
}

// TestReportDeterminism: two fixed-count runs with the same seed emit
// byte-identical reports once the timing section and the ephemeral
// target URL are zeroed; a different seed changes the trace fingerprint.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism pass boots and mines two corpora; skipped under -short")
	}
	canon := func(raw string) (string, report) {
		var rep report
		if err := json.Unmarshal([]byte(raw), &rep); err != nil {
			t.Fatalf("report does not parse: %v\n%s", err, raw)
		}
		got := rep
		got.Config.Target = ""
		got.Timing = reportTiming{}
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), rep
	}

	// Read-only (write-fraction 0): the request set AND the responses
	// are reproducible against identical fresh servers.
	var canons []string
	var reps []report
	for i := 0; i < 2; i++ {
		ts, _ := bootTarget(t)
		code, stdout, stderr := runLoad(t,
			"-target", ts.URL, "-requests", "150", "-seed", "1", "-concurrency", "4", "-vocab", "300")
		if code != 0 {
			t.Fatalf("run %d exit %d: %s", i, code, stderr)
		}
		c, rep := canon(stdout)
		canons = append(canons, c)
		reps = append(reps, rep)
	}
	if canons[0] != canons[1] {
		t.Errorf("same-seed reports differ modulo timing:\n%s\n%s", canons[0], canons[1])
	}
	if reps[0].Workload.TraceFingerprint != reps[1].Workload.TraceFingerprint {
		t.Errorf("same-seed fingerprints differ: %s vs %s",
			reps[0].Workload.TraceFingerprint, reps[1].Workload.TraceFingerprint)
	}
	if reps[0].Outcome.TransportErrors != 0 {
		t.Errorf("transport errors on loopback: %d", reps[0].Outcome.TransportErrors)
	}

	ts, _ := bootTarget(t)
	code, stdout, stderr := runLoad(t,
		"-target", ts.URL, "-requests", "150", "-seed", "2", "-concurrency", "4", "-vocab", "300")
	if code != 0 {
		t.Fatalf("seed-2 run exit %d: %s", code, stderr)
	}
	_, rep2 := canon(stdout)
	if rep2.Workload.TraceFingerprint == reps[0].Workload.TraceFingerprint {
		t.Error("different seeds produced the same trace fingerprint")
	}
}

// TestReportRoundTrip: the emitted JSON survives a decode through the
// report schema struct and re-encodes to the same document — no field
// the tool writes is missing from the schema it publishes.
func TestReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round trip boots and mines a corpus; skipped under -short")
	}
	ts, _ := bootTarget(t)
	code, stdout, stderr := runLoad(t,
		"-target", ts.URL, "-requests", "60", "-seed", "3", "-concurrency", "2", "-vocab", "300")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("report does not parse into the schema: %v", err)
	}
	reenc, err := marshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(reenc) != stdout {
		t.Errorf("schema round trip lost information:\n--- emitted ---\n%s--- round-tripped ---\n%s", stdout, reenc)
	}
}

// TestSmokeMixedLoad is the CI smoke and the acceptance check in one:
// a short deterministic mixed read/write pass against the in-process
// server must finish with zero transport errors, non-zero throughput,
// real latency numbers on the search route, and — closing the loop with
// the tentpole's other half — the server's /metrics request counters
// must equal the report's per-route sent totals.
func TestSmokeMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load smoke re-mines dirty terms on every ingest flush; skipped under -short")
	}
	ts, handler := bootTarget(t)
	code, stdout, stderr := runLoad(t,
		"-target", ts.URL, "-requests", "300", "-seed", "1", "-concurrency", "8",
		"-write-fraction", "0.15", "-subscribe-fraction", "0.1", "-vocab", "300")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Outcome.TransportErrors != 0 {
		t.Errorf("transport errors: %d", rep.Outcome.TransportErrors)
	}
	if rep.Workload.Ops != 300 {
		t.Errorf("ops = %d, want 300", rep.Workload.Ops)
	}
	if rep.Timing.QPS <= 0 {
		t.Errorf("qps = %v, want > 0", rep.Timing.QPS)
	}
	if rep.Workload.DocsSent == 0 {
		t.Error("mixed load sent no documents")
	}
	if rep.Topology.Docs == 0 || rep.Topology.Streams == 0 {
		t.Errorf("topology header missing corpus facts: %+v", rep.Topology)
	}
	if rep.Topology.Shards != 1 || rep.Topology.Members != nil {
		t.Errorf("single stserve should report a 1-shard topology: %+v", rep.Topology)
	}
	search, ok := rep.Timing.Routes[routeSearch]
	if !ok {
		t.Fatalf("no latency section for %s", routeSearch)
	}
	if !(search.P50Ms > 0 && search.P50Ms <= search.P99Ms && search.P99Ms <= search.MaxMs) {
		t.Errorf("implausible search latencies: %+v", search)
	}
	subs := rep.Outcome.Subscriptions
	if subs == nil {
		t.Fatal("subscribe-fraction run produced no subscriptions outcome section")
	}
	if subs.Creates == 0 || subs.Created == 0 {
		t.Errorf("expected successful subscription registrations, got %+v", subs)
	}
	if subs.Created+subs.Rejected > subs.Creates {
		t.Errorf("inconsistent create accounting: %+v", subs)
	}

	// Cross-check against the server's own accounting. The topology
	// probe stload runs before the load is one extra stats request the
	// server counted but the report's workload (rightly) does not.
	scraped := scrapeCounters(t, ts.URL)
	scraped[routeStats]--
	for route, sent := range rep.Workload.OpsByRoute {
		if got := scraped[route]; got != sent {
			t.Errorf("server /metrics counts %d requests on %q, report sent %d", got, route, sent)
		}
	}
	var reg bytes.Buffer
	if err := handler.Registry().WriteText(&reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reg.String(), "stserve_ingested_docs_total "+strconv.Itoa(rep.Workload.DocsSent)) {
		t.Errorf("server ingested-docs gauge disagrees with %d docs sent:\n%s",
			rep.Workload.DocsSent, grepLine(reg.String(), "stserve_ingested_docs_total"))
	}
}

// scrapeCounters sums the server's stserve_http_requests_total series
// by route across status classes.
func scrapeCounters(t *testing.T, target string) map[string]int {
	t.Helper()
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, `stserve_http_requests_total{route="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `stserve_http_requests_total{route="`)
		q := strings.Index(rest, `"`)
		sp := strings.LastIndexByte(rest, ' ')
		if q < 0 || sp < 0 {
			t.Fatalf("unparseable series line %q", line)
		}
		n, err := strconv.Atoi(rest[sp+1:])
		if err != nil {
			t.Fatalf("unparseable count in %q: %v", line, err)
		}
		out[rest[:q]] += n
	}
	return out
}

func grepLine(text, needle string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			return line
		}
	}
	return "(absent)"
}
