package main

// The report schema. Sections split by reproducibility: config and
// workload are pure functions of the flags for a fixed -requests run
// (the trace fingerprint is an order-independent combine over every
// request actually sent, so racing workers don't perturb it); outcome
// depends on the server's responses; timing is wall-clock and never
// comparable across runs. Tests zero the timing section (and the
// target, which carries an ephemeral port) before comparing reports
// byte for byte.
type report struct {
	Config   reportConfig   `json:"config"`
	Workload reportWorkload `json:"workload"`
	Outcome  reportOutcome  `json:"outcome"`
	Timing   reportTiming   `json:"timing"`
}

type reportConfig struct {
	Target        string  `json:"target"`
	Seed          int64   `json:"seed"`
	Requests      int     `json:"requests,omitempty"`
	Duration      string  `json:"duration,omitempty"`
	Concurrency   int     `json:"concurrency"`
	Rate          float64 `json:"rate,omitempty"`
	WriteFraction float64 `json:"write_fraction"`
	Vocab         int     `json:"vocab"`
	Timeline      int     `json:"timeline"`
}

type reportWorkload struct {
	Ops              int            `json:"ops"`
	OpsByRoute       map[string]int `json:"ops_by_route"`
	DocsSent         int            `json:"docs_sent"`
	TraceFingerprint string         `json:"trace_fingerprint"`
}

type reportOutcome struct {
	TransportErrors int            `json:"transport_errors"`
	StatusByClass   map[string]int `json:"status_by_class"`
}

type reportTiming struct {
	ElapsedSeconds float64                 `json:"elapsed_seconds"`
	QPS            float64                 `json:"qps"`
	Routes         map[string]routeLatency `json:"routes"`
}

type routeLatency struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}
