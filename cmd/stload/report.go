package main

// The report schema. Sections split by reproducibility: config and
// workload are pure functions of the flags for a fixed -requests run
// (the trace fingerprint is an order-independent combine over every
// request actually sent, so racing workers don't perturb it); outcome
// depends on the server's responses; timing is wall-clock and never
// comparable across runs. Tests zero the timing section (and the
// target, which carries an ephemeral port) before comparing reports
// byte for byte.
type report struct {
	Config   reportConfig   `json:"config"`
	Topology reportTopology `json:"topology"`
	Workload reportWorkload `json:"workload"`
	Outcome  reportOutcome  `json:"outcome"`
	Timing   reportTiming   `json:"timing"`
}

type reportConfig struct {
	Target            string  `json:"target"`
	Seed              int64   `json:"seed"`
	Requests          int     `json:"requests,omitempty"`
	Duration          string  `json:"duration,omitempty"`
	Concurrency       int     `json:"concurrency"`
	Rate              float64 `json:"rate,omitempty"`
	WriteFraction     float64 `json:"write_fraction"`
	SubscribeFraction float64 `json:"subscribe_fraction,omitempty"`
	Vocab             int     `json:"vocab"`
	Timeline          int     `json:"timeline"`
}

// reportTopology is the target's own account of what was under load,
// captured from GET /v1/stats before the first op (an ingesting run
// would otherwise move docs and generation mid-probe). It speaks both
// server dialects: a lone stserve reports its identity under "shard"
// (shards is 1 unless it serves an stmine -shards bundle), an stgate
// coordinator reports the whole cluster's under "cluster", including
// the member URLs. The fingerprint is always the corpus checksum.
type reportTopology struct {
	Docs        int      `json:"docs"`
	Streams     int      `json:"streams"`
	Timeline    int      `json:"timeline"`
	Generation  uint64   `json:"generation"`
	Shards      int      `json:"shards"`
	Scheme      string   `json:"scheme,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Members     []string `json:"members,omitempty"`
}

type reportWorkload struct {
	Ops              int            `json:"ops"`
	OpsByRoute       map[string]int `json:"ops_by_route"`
	DocsSent         int            `json:"docs_sent"`
	TraceFingerprint string         `json:"trace_fingerprint"`
}

type reportOutcome struct {
	TransportErrors int            `json:"transport_errors"`
	StatusByClass   map[string]int `json:"status_by_class"`
	// Subscriptions tallies the -subscribe-fraction op class's outcomes
	// (absent when the run sent no subscription CRUD). A fetch or delete
	// probing an ID no registration produced is an honest not_found, not
	// an error.
	Subscriptions *reportSubscriptions `json:"subscriptions,omitempty"`
}

type reportSubscriptions struct {
	Creates  int `json:"creates"`
	Created  int `json:"created"`
	Rejected int `json:"rejected"`
	Lists    int `json:"lists"`
	Fetches  int `json:"fetches"`
	Deletes  int `json:"deletes"`
	Deleted  int `json:"deleted"`
	NotFound int `json:"not_found"`
}

type reportTiming struct {
	ElapsedSeconds float64                 `json:"elapsed_seconds"`
	QPS            float64                 `json:"qps"`
	Routes         map[string]routeLatency `json:"routes"`
}

type routeLatency struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}
