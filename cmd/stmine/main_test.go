package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stburst/internal/geo"
	"stburst/internal/index"
	"stburst/internal/stream"
)

// mineCollection builds a small corpus with one localized burst so every
// miner has patterns to report.
func mineCollection(t *testing.T) *stream.Collection {
	t.Helper()
	col := stream.NewCollection([]stream.Info{
		{Name: "lima", Location: geo.Point{X: 0, Y: 0}},
		{Name: "quito", Location: geo.Point{X: 2, Y: 1}},
		{Name: "tokyo", Location: geo.Point{X: 90, Y: 80}},
	}, 10)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := col.AddTokens(s, w, strings.Fields(text)); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 10; w++ {
		add(0, w, "markets calm trading")
		add(1, w, "football weather outlook")
		add(2, w, "exports quarterly report")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "earthquake rescue earthquake")
			add(1, w, "earthquake tremors")
		}
	}
	return col
}

// TestMineAllSingleKindSnapshot: the single-kind batch path still writes
// a loadable .stb snapshot whose fingerprint matches the mined set, and
// prints a ranked pattern listing.
func TestMineAllSingleKindSnapshot(t *testing.T) {
	col := mineCollection(t)
	for _, method := range []string{"stlocal", "stcomb", "temporal"} {
		t.Run(method, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "snapshot.stb")
			var out bytes.Buffer
			if err := mineAll(&out, io.Discard, col, method, 5, 1, path); err != nil {
				t.Fatalf("mineAll(%s) = %v", method, err)
			}
			if !strings.Contains(out.String(), "#1") {
				t.Errorf("mineAll(%s) printed no ranked patterns:\n%s", method, out.String())
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("snapshot not written: %v", err)
			}
			defer f.Close()
			snap, err := index.ReadSnapshot(f)
			if err != nil {
				t.Fatalf("written snapshot does not load: %v", err)
			}
			if snap.Set.NumPatterns() == 0 {
				t.Errorf("snapshot holds no patterns")
			}
		})
	}
}

// TestMineAllUnknownMethod: a bad method is a usage error (exit 2), not
// a mining failure.
func TestMineAllUnknownMethod(t *testing.T) {
	err := mineAll(io.Discard, io.Discard, mineCollection(t), "nope", 5, 1, "")
	if err == nil {
		t.Fatal("mineAll accepted an unknown method")
	}
	if exitCode(err) != 2 {
		t.Errorf("exitCode = %d, want 2 for a usage error", exitCode(err))
	}
}

// TestMineAllKindsBundle: -method all mines the three kinds in one pass
// and writes a bundle whose members match the single-kind miners bit for
// bit.
func TestMineAllKindsBundle(t *testing.T) {
	col := mineCollection(t)
	path := filepath.Join(t.TempDir(), "corpus.bundle")
	var out, diag bytes.Buffer
	if err := mineAllKinds(&out, &diag, col, 5, 2, path); err != nil {
		t.Fatalf("mineAllKinds = %v", err)
	}
	if !strings.Contains(out.String(), "[regional]") &&
		!strings.Contains(out.String(), "[combinatorial]") &&
		!strings.Contains(out.String(), "[temporal]") {
		t.Errorf("merged listing lacks kind tags:\n%s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("bundle not written: %v", err)
	}
	defer f.Close()
	snaps, _, err := index.ReadBundle(f)
	if err != nil {
		t.Fatalf("written bundle does not load: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("bundle has %d members, want 3", len(snaps))
	}
	// Each member must be bit-identical to its single-kind miner output.
	singles := map[index.PatternKind]*index.PatternSet{}
	tmp := t.TempDir()
	for _, method := range []string{"stlocal", "stcomb", "temporal"} {
		p := filepath.Join(tmp, method+".stb")
		if err := mineAll(io.Discard, io.Discard, col, method, 1, 1, p); err != nil {
			t.Fatal(err)
		}
		sf, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := index.ReadSnapshot(sf)
		sf.Close()
		if err != nil {
			t.Fatal(err)
		}
		singles[snap.Set.Kind()] = snap.Set
	}
	for _, snap := range snaps {
		want := singles[snap.Set.Kind()]
		if want == nil {
			t.Fatalf("bundle member kind %v has no single-kind counterpart", snap.Set.Kind())
		}
		if snap.Set.Fingerprint() != want.Fingerprint() {
			t.Errorf("bundle %v member fingerprint differs from the single-kind miner", snap.Set.Kind())
		}
	}
}
