package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stburst/internal/geo"
	"stburst/internal/index"
	"stburst/internal/stream"
)

// mineCollection builds a small corpus with one localized burst so every
// miner has patterns to report.
func mineCollection(t *testing.T) *stream.Collection {
	t.Helper()
	col := stream.NewCollection([]stream.Info{
		{Name: "lima", Location: geo.Point{X: 0, Y: 0}},
		{Name: "quito", Location: geo.Point{X: 2, Y: 1}},
		{Name: "tokyo", Location: geo.Point{X: 90, Y: 80}},
	}, 10)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := col.AddTokens(s, w, strings.Fields(text)); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 10; w++ {
		add(0, w, "markets calm trading")
		add(1, w, "football weather outlook")
		add(2, w, "exports quarterly report")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "earthquake rescue earthquake")
			add(1, w, "earthquake tremors")
		}
	}
	return col
}

// TestMineAllSingleKindSnapshot: the single-kind batch path still writes
// a loadable .stb snapshot whose fingerprint matches the mined set, and
// prints a ranked pattern listing.
func TestMineAllSingleKindSnapshot(t *testing.T) {
	col := mineCollection(t)
	for _, method := range []string{"stlocal", "stcomb", "temporal"} {
		t.Run(method, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "snapshot.stb")
			var out bytes.Buffer
			if err := mineAll(&out, io.Discard, col, method, 5, 1, path); err != nil {
				t.Fatalf("mineAll(%s) = %v", method, err)
			}
			if !strings.Contains(out.String(), "#1") {
				t.Errorf("mineAll(%s) printed no ranked patterns:\n%s", method, out.String())
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("snapshot not written: %v", err)
			}
			defer f.Close()
			snap, err := index.ReadSnapshot(f)
			if err != nil {
				t.Fatalf("written snapshot does not load: %v", err)
			}
			if snap.Set.NumPatterns() == 0 {
				t.Errorf("snapshot holds no patterns")
			}
		})
	}
}

// TestMineAllUnknownMethod: a bad method is a usage error (exit 2), not
// a mining failure.
func TestMineAllUnknownMethod(t *testing.T) {
	err := mineAll(io.Discard, io.Discard, mineCollection(t), "nope", 5, 1, "")
	if err == nil {
		t.Fatal("mineAll accepted an unknown method")
	}
	if exitCode(err) != 2 {
		t.Errorf("exitCode = %d, want 2 for a usage error", exitCode(err))
	}
}

// TestMineAllKindsBundle: -method all mines the three kinds in one pass
// and writes a bundle whose members match the single-kind miners bit for
// bit.
func TestMineAllKindsBundle(t *testing.T) {
	col := mineCollection(t)
	path := filepath.Join(t.TempDir(), "corpus.bundle")
	var out, diag bytes.Buffer
	if err := mineAllKinds(&out, &diag, col, 5, 2, path, 1); err != nil {
		t.Fatalf("mineAllKinds = %v", err)
	}
	if !strings.Contains(out.String(), "[regional]") &&
		!strings.Contains(out.String(), "[combinatorial]") &&
		!strings.Contains(out.String(), "[temporal]") {
		t.Errorf("merged listing lacks kind tags:\n%s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("bundle not written: %v", err)
	}
	defer f.Close()
	snaps, _, err := index.ReadBundle(f)
	if err != nil {
		t.Fatalf("written bundle does not load: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("bundle has %d members, want 3", len(snaps))
	}
	// Each member must be bit-identical to its single-kind miner output.
	singles := map[index.PatternKind]*index.PatternSet{}
	tmp := t.TempDir()
	for _, method := range []string{"stlocal", "stcomb", "temporal"} {
		p := filepath.Join(tmp, method+".stb")
		if err := mineAll(io.Discard, io.Discard, col, method, 1, 1, p); err != nil {
			t.Fatal(err)
		}
		sf, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := index.ReadSnapshot(sf)
		sf.Close()
		if err != nil {
			t.Fatal(err)
		}
		singles[snap.Set.Kind()] = snap.Set
	}
	for _, snap := range snaps {
		want := singles[snap.Set.Kind()]
		if want == nil {
			t.Fatalf("bundle member kind %v has no single-kind counterpart", snap.Set.Kind())
		}
		if snap.Set.Fingerprint() != want.Fingerprint() {
			t.Errorf("bundle %v member fingerprint differs from the single-kind miner", snap.Set.Kind())
		}
	}
}

// TestFlagValidation: the CLI flag table — every rejected combination is
// a clean usage error (exit 2), every accepted one passes.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		term   string
		all    bool
		method string
		out    string
		shards int
		ok     bool
	}{
		{name: "single term", term: "earthquake", method: "stlocal", shards: 1, ok: true},
		{name: "all with bundle", all: true, method: "all", out: "corpus.bundle", shards: 1, ok: true},
		{name: "sharded bundle", all: true, method: "all", out: "corpus.bundle", shards: 3, ok: true},
		{name: "no term no all", method: "stlocal", shards: 1, ok: false},
		{name: "output without all", term: "earthquake", method: "stlocal", out: "x.stb", shards: 1, ok: false},
		{name: "zero shards", all: true, method: "all", out: "corpus.bundle", shards: 0, ok: false},
		{name: "negative shards", all: true, method: "all", out: "corpus.bundle", shards: -2, ok: false},
		{name: "shards without all", term: "earthquake", method: "all", out: "x.bundle", shards: 2, ok: false},
		{name: "shards with single-kind method", all: true, method: "stlocal", out: "x.stb", shards: 2, ok: false},
		{name: "shards without output", all: true, method: "all", shards: 2, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.term, tc.all, tc.method, tc.out, tc.shards)
			if tc.ok && err != nil {
				t.Fatalf("validateFlags rejected a valid combination: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("validateFlags accepted an invalid combination")
				}
				if exitCode(err) != 2 {
					t.Errorf("exitCode = %d, want 2 for a usage error", exitCode(err))
				}
			}
		})
	}
}

// TestMineAllKindsSharded: -shards splits the vocabulary into per-shard
// bundles that carry their coordinates and corpus checksum, partition
// the terms exactly by index.TermShard, and recombine to the unsharded
// miner's output bit for bit.
func TestMineAllKindsSharded(t *testing.T) {
	col := mineCollection(t)
	const shards = 2
	tmp := t.TempDir()
	base := filepath.Join(tmp, "corpus.bundle")
	var diag bytes.Buffer
	if err := mineAllKinds(io.Discard, &diag, col, 5, 2, base, shards); err != nil {
		t.Fatalf("mineAllKinds sharded = %v", err)
	}

	whole := filepath.Join(tmp, "whole.bundle")
	if err := mineAllKinds(io.Discard, io.Discard, col, 5, 2, whole, 1); err != nil {
		t.Fatal(err)
	}
	wf, err := os.Open(whole)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	wholeSnaps, _, err := index.ReadBundle(wf)
	if err != nil {
		t.Fatal(err)
	}

	merged := make([]map[int]bool, 3) // per kind: term IDs seen across shards
	for i := range merged {
		merged[i] = map[int]bool{}
	}
	for i := 0; i < shards; i++ {
		path := shardBundlePath(base, i, shards)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("shard %d bundle not written: %v", i, err)
		}
		snaps, gen, info, err := index.ReadBundleShard(f)
		f.Close()
		if err != nil {
			t.Fatalf("shard %d bundle does not load: %v", i, err)
		}
		want := index.ShardInfo{Shard: i, Shards: shards, Scheme: index.ShardScheme, CorpusFingerprint: col.Checksum()}
		if info != want || gen != 0 {
			t.Errorf("shard %d identity = %+v gen %d, want %+v gen 0", i, info, gen, want)
		}
		if len(snaps) != 3 {
			t.Fatalf("shard %d bundle has %d members, want 3", i, len(snaps))
		}
		for ki, snap := range snaps {
			for _, id := range snap.Set.Terms() {
				if got := index.TermShard(col.Dict().Term(id), shards); got != i {
					t.Errorf("term %q in shard %d, TermShard says %d", col.Dict().Term(id), i, got)
				}
				if merged[ki][id] {
					t.Errorf("term %q appears in two shards", col.Dict().Term(id))
				}
				merged[ki][id] = true
			}
		}
	}
	for ki, snap := range wholeSnaps {
		if len(merged[ki]) != snap.Set.NumTerms() {
			t.Errorf("kind %v: shards cover %d terms, unsharded miner has %d",
				snap.Set.Kind(), len(merged[ki]), snap.Set.NumTerms())
		}
	}

	// A shard count beyond the vocabulary is a usage error, found only
	// after the corpus loads.
	err = mineAllKinds(io.Discard, io.Discard, col, 5, 1, filepath.Join(tmp, "x.bundle"), col.Dict().Len()+1)
	if err == nil || exitCode(err) != 2 {
		t.Errorf("oversized -shards: err=%v exitCode=%d, want usage error exit 2", err, exitCode(err))
	}
}
