// Command stmine mines spatiotemporal burstiness patterns from a JSONL
// corpus produced by stgen (-kind topix).
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -term earthquake -method stlocal < corpus.jsonl
//	stmine -term fujimori   -method stcomb  -k 5 < corpus.jsonl
//	stmine -all -method stlocal -parallel 8 -corpus corpus.jsonl
//	stmine -all -corpus corpus.jsonl -o snapshot.stb
//	stmine -all -method all -corpus corpus.jsonl -o corpus.bundle
//
// With -all, the entire corpus vocabulary is mined concurrently across a
// bounded worker pool (-parallel workers, default one per CPU) and the
// top-k patterns corpus-wide are printed together with their terms; the
// output is identical for every worker count. -o additionally writes the
// mined index as a binary snapshot, the artifact cmd/stserve loads at
// boot — mine once, serve many.
//
// -method all mines all three pattern kinds (regional, combinatorial,
// temporal) in a single pass over one shared worker pool and writes the
// three indexes as one bundle, the artifact a multi-kind stserve boots
// from; the top-k listing then tags each pattern with its kind.
//
// -shards N (requires -all -method all -o) splits the mined vocabulary
// into N shard bundles by hashing each term's canonical string
// (index.TermShard), written as PATH-shard<i>-of<N>.ext next to the -o
// path. Every shard bundle records its coordinates, the partition
// scheme and the corpus checksum, so stserve and the stgate coordinator
// can refuse a mixed or foreign shard set:
//
//	stmine -all -method all -shards 3 -corpus corpus.jsonl -o corpus.bundle
//	stserve -corpus corpus.jsonl -snapshot corpus-shard0-of3.bundle -addr :8081
//	stgate  -shard http://host1:8081 -shard http://host2:8082 -shard http://host3:8083
//
// Streams are projected onto the 2-D plane with multidimensional scaling
// over their pairwise geographic distances, as in §6.1 of the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/index"
	"stburst/internal/search"
	"stburst/internal/stream"
)

func main() {
	var (
		term     = flag.String("term", "", "term to mine (required unless -all)")
		all      = flag.Bool("all", false, "mine every term of the corpus")
		method   = flag.String("method", "stlocal", "miner: stlocal, stcomb, temporal or all (temporal and all require -all)")
		k        = flag.Int("k", 5, "number of patterns to print")
		parallel = flag.Int("parallel", 0, "mining workers for -all (<1 = one per CPU)")
		corpus   = flag.String("corpus", "", "JSONL corpus path (default: read stdin)")
		out      = flag.String("o", "", "write the mined index as a snapshot (-method all: a bundle) to this path (requires -all)")
		shards   = flag.Int("shards", 1, "split the mined vocabulary into this many shard bundles (requires -all -method all -o)")
	)
	flag.Parse()
	if err := validateFlags(*term, *all, *method, *out, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "stmine:", err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *corpus != "" {
		f, err := os.Open(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	col, _, err := corpusio.Load(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmine:", err)
		os.Exit(1)
	}
	if col.NumDocs() == 0 {
		fmt.Fprintln(os.Stderr, "stmine: corpus contains no documents")
		os.Exit(1)
	}
	if *all {
		var mineErr error
		if *method == "all" {
			mineErr = mineAllKinds(os.Stdout, os.Stderr, col, *k, *parallel, *out, *shards)
		} else {
			mineErr = mineAll(os.Stdout, os.Stderr, col, *method, *k, *parallel, *out)
		}
		if mineErr != nil {
			fmt.Fprintln(os.Stderr, "stmine:", mineErr)
			os.Exit(exitCode(mineErr))
		}
		return
	}
	id, ok := col.Dict().Lookup(*term)
	if !ok {
		fmt.Fprintf(os.Stderr, "stmine: term %q not in corpus\n", *term)
		os.Exit(1)
	}
	surface := col.Surface(id)
	switch *method {
	case "stlocal":
		ws, err := core.MineLocal(surface, col.Points(), core.STLocalOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		if len(ws) > *k {
			ws = ws[:*k]
		}
		for i, w := range ws {
			fmt.Printf("#%d  w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s\n",
				i+1, w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		ps := core.STComb(surface, core.STCombOptions{MaxPatterns: *k})
		for i, p := range ps {
			fmt.Printf("#%d  score %.3f  weeks [%d,%d]  %d streams: %s\n",
				i+1, p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	case "temporal", "tb":
		fmt.Fprintln(os.Stderr, "stmine: -method temporal requires -all (it mines the merged stream corpus-wide)")
		os.Exit(2)
	case "all":
		fmt.Fprintln(os.Stderr, "stmine: -method all requires -all (it mines every kind corpus-wide)")
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", *method)
		os.Exit(2)
	}
}

// usageError marks a bad flag combination (exit 2, not 1).
type usageError string

func (e usageError) Error() string { return string(e) }

// validateFlags rejects impossible flag combinations before any corpus
// is read. Splitting into shards needs the one mode that produces whole-
// vocabulary bundles: -all -method all with an -o path to derive the
// per-shard file names from (-shards exceeding the vocabulary size is
// caught after the corpus loads, in mineAllKinds).
func validateFlags(term string, all bool, method, out string, shards int) error {
	if term == "" && !all {
		return usageError("-term is required (or pass -all)")
	}
	if out != "" && !all {
		return usageError("-o requires -all (snapshots hold the whole vocabulary)")
	}
	if shards < 1 {
		return usageError(fmt.Sprintf("-shards %d: need at least 1 shard", shards))
	}
	if shards > 1 {
		if !all || method != "all" {
			return usageError("-shards requires -all -method all (every shard bundle carries all three kinds)")
		}
		if out == "" {
			return usageError("-shards requires -o (shard bundles are on-disk artifacts, not listings)")
		}
	}
	return nil
}

// shardBundlePath derives shard i's bundle file name from the -o path:
// corpus.bundle becomes corpus-shard0-of3.bundle and so on, keeping the
// extension so every artifact stays recognizably a bundle.
func shardBundlePath(path string, shard, shards int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s-shard%d-of%d%s", strings.TrimSuffix(path, ext), shard, shards, ext)
}

func exitCode(err error) int {
	if _, ok := err.(usageError); ok {
		return 2
	}
	return 1
}

// scored locates one pattern for the cross-term top-k listing.
type scored struct {
	term  int
	idx   int // position within the term's pattern slice
	score float64
}

// printTop sorts the scored patterns by descending score with
// deterministic tie-breaks and prints the k best through format.
func printTop(w io.Writer, col *stream.Collection, top []scored, k int, format func(s scored) string) {
	sort.Slice(top, func(i, j int) bool {
		if top[i].score != top[j].score {
			return top[i].score > top[j].score
		}
		if top[i].term != top[j].term {
			return top[i].term < top[j].term
		}
		return top[i].idx < top[j].idx
	})
	if len(top) > k {
		top = top[:k]
	}
	for i, s := range top {
		fmt.Fprintf(w, "#%d  %-18s %s\n", i+1, col.Dict().Term(s.term), format(s))
	}
}

// mineAll runs the corpus-wide batch miner for one pattern kind, prints
// the top-k patterns across all terms (by descending score with
// deterministic tie-breaks) to out and, when snapshotPath is set, writes
// the mined index as a snapshot. Only the k survivors are formatted:
// per-term pattern slices are already deterministically ordered, so
// (score, term, position) is a total order.
func mineAll(out, diag io.Writer, col *stream.Collection, method string, k, parallel int, snapshotPath string) error {
	var format func(s scored) string
	start := time.Now()
	var top []scored
	var set *index.PatternSet
	switch method {
	case "stlocal":
		byTerm := search.MineWindowsPar(col, core.STLocalOptions{}, parallel)
		set = index.NewWindowSet(byTerm)
		for term, ws := range byTerm {
			for i, w := range ws {
				top = append(top, scored{term, i, w.Score})
			}
		}
		format = func(s scored) string {
			w := byTerm[s.term][s.idx]
			return fmt.Sprintf("w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s",
				w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		byTerm := search.MineCombPatternsPar(col, core.STCombOptions{}, parallel)
		set = index.NewCombSet(byTerm)
		for term, ps := range byTerm {
			for i, p := range ps {
				top = append(top, scored{term, i, p.Score})
			}
		}
		format = func(s scored) string {
			p := byTerm[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  %d streams: %s",
				p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	case "temporal", "tb":
		byTerm := search.MineTemporalPar(col, nil, parallel)
		set = index.NewTemporalSet(byTerm)
		for term, ivs := range byTerm {
			for i, iv := range ivs {
				top = append(top, scored{term, i, iv.Score})
			}
		}
		format = func(s scored) string {
			iv := byTerm[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  merged stream", iv.Score, iv.Start, iv.End)
		}
	default:
		return usageError(fmt.Sprintf("unknown method %q", method))
	}
	elapsed := time.Since(start)
	fmt.Fprintf(diag, "stmine: mined %d terms, %d patterns in %v\n",
		col.Dict().Len(), set.NumPatterns(), elapsed.Round(time.Millisecond))
	if snapshotPath != "" {
		if err := index.WriteSnapshotFile(snapshotPath, set, col.Dict().Term); err != nil {
			return err
		}
		fmt.Fprintf(diag, "stmine: snapshot written to %s (fingerprint %.12s...)\n",
			snapshotPath, set.Fingerprint())
	}
	printTop(out, col, top, k, format)
	return nil
}

// mineAllKinds mines all three pattern kinds in a single pass over one
// shared worker pool, prints the top-k patterns across every term AND
// kind (each line tagged with its kind) to out and, when bundlePath is
// set, writes the three indexes as one bundle — the artifact a
// multi-kind stserve boots from. With shards > 1 the vocabulary is
// split by index.TermShard and each shard's three kinds are written as
// one sharded bundle next to bundlePath instead.
func mineAllKinds(out, diag io.Writer, col *stream.Collection, k, parallel int, bundlePath string, shards int) error {
	if shards > col.Dict().Len() {
		return usageError(fmt.Sprintf("-shards %d exceeds the vocabulary size %d (a shard must own at least one term)",
			shards, col.Dict().Len()))
	}
	start := time.Now()
	windows, combs, temporal, err := search.MineAllKindsParCtx(context.Background(), col,
		core.STLocalOptions{}, core.STCombOptions{}, nil, parallel)
	if err != nil {
		return err
	}
	sets := []*index.PatternSet{
		index.NewWindowSet(windows),
		index.NewCombSet(combs),
		index.NewTemporalSet(temporal),
	}
	elapsed := time.Since(start)
	total := 0
	for _, set := range sets {
		total += set.NumPatterns()
	}
	fmt.Fprintf(diag, "stmine: mined %d terms x 3 kinds, %d patterns in %v\n",
		col.Dict().Len(), total, elapsed.Round(time.Millisecond))
	for _, set := range sets {
		fmt.Fprintf(diag, "stmine: %-13s %d terms, %d patterns, fingerprint %.12s...\n",
			set.Kind(), set.NumTerms(), set.NumPatterns(), set.Fingerprint())
	}
	switch {
	case bundlePath != "" && shards > 1:
		// One sharded bundle per vocabulary slice, each stamped with its
		// coordinates, the partition scheme and the corpus checksum so a
		// serving cluster can detect a mixed or foreign shard set. The
		// generation starts at 0 as for any freshly mined artifact.
		parts, err := index.SplitSets(sets, col.Dict().Term, shards)
		if err != nil {
			return err
		}
		checksum := col.Checksum()
		for i, part := range parts {
			info := index.ShardInfo{Shard: i, Shards: shards, Scheme: index.ShardScheme, CorpusFingerprint: checksum}
			path := shardBundlePath(bundlePath, i, shards)
			if err := index.WriteBundleShardedFile(path, part, col.Dict().Term, 0, info); err != nil {
				return err
			}
			terms, patterns := 0, 0
			for _, set := range part {
				terms += set.NumTerms()
				patterns += set.NumPatterns()
			}
			fmt.Fprintf(diag, "stmine: shard %d/%d written to %s (%d terms, %d patterns)\n",
				i, shards, path, terms, patterns)
		}
	case bundlePath != "":
		// A freshly mined artifact starts the generation sequence at 0;
		// live ingestion through stserve advances it from there.
		if err := index.WriteBundleFile(bundlePath, sets, col.Dict().Term, 0); err != nil {
			return err
		}
		fmt.Fprintf(diag, "stmine: bundle written to %s (3 members)\n", bundlePath)
	}

	// One merged top-k across kinds: kindScored extends the (score, term,
	// position) total order with the kind as the outer tie-break. Only
	// the k survivors are formatted, as in mineAll.
	type kindScored struct {
		kind string
		s    scored
	}
	format := map[string]func(s scored) string{
		"regional": func(s scored) string {
			w := windows[s.term][s.idx]
			return fmt.Sprintf("w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s",
				w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		},
		"combinatorial": func(s scored) string {
			p := combs[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  %d streams: %s",
				p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		},
		"temporal": func(s scored) string {
			iv := temporal[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  merged stream", iv.Score, iv.Start, iv.End)
		},
	}
	var top []kindScored
	for term, ws := range windows {
		for i, w := range ws {
			top = append(top, kindScored{"regional", scored{term, i, w.Score}})
		}
	}
	for term, ps := range combs {
		for i, p := range ps {
			top = append(top, kindScored{"combinatorial", scored{term, i, p.Score}})
		}
	}
	for term, ivs := range temporal {
		for i, iv := range ivs {
			top = append(top, kindScored{"temporal", scored{term, i, iv.Score}})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].s.score != top[j].s.score {
			return top[i].s.score > top[j].s.score
		}
		if top[i].kind != top[j].kind {
			return top[i].kind < top[j].kind
		}
		if top[i].s.term != top[j].s.term {
			return top[i].s.term < top[j].s.term
		}
		return top[i].s.idx < top[j].s.idx
	})
	if len(top) > k {
		top = top[:k]
	}
	for i, ks := range top {
		fmt.Fprintf(out, "#%d  [%s] %-18s %s\n", i+1, ks.kind, col.Dict().Term(ks.s.term), format[ks.kind](ks.s))
	}
	return nil
}

func names(col *stream.Collection, streams []int, max int) string {
	out := ""
	for i, x := range streams {
		if i == max {
			return out + ", ..."
		}
		if i > 0 {
			out += ", "
		}
		out += col.Stream(x).Name
	}
	return out
}
