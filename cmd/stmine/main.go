// Command stmine mines spatiotemporal burstiness patterns from a JSONL
// corpus produced by stgen (-kind topix).
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -term earthquake -method stlocal < corpus.jsonl
//	stmine -term fujimori   -method stcomb  -k 5 < corpus.jsonl
//	stmine -all -method stlocal -parallel 8 -corpus corpus.jsonl
//	stmine -all -corpus corpus.jsonl -o snapshot.stb
//
// With -all, the entire corpus vocabulary is mined concurrently across a
// bounded worker pool (-parallel workers, default one per CPU) and the
// top-k patterns corpus-wide are printed together with their terms; the
// output is identical for every worker count. -o additionally writes the
// mined index as a binary snapshot, the artifact cmd/stserve loads at
// boot — mine once, serve many.
//
// Streams are projected onto the 2-D plane with multidimensional scaling
// over their pairwise geographic distances, as in §6.1 of the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/index"
	"stburst/internal/search"
	"stburst/internal/stream"
)

func main() {
	var (
		term     = flag.String("term", "", "term to mine (required unless -all)")
		all      = flag.Bool("all", false, "mine every term of the corpus")
		method   = flag.String("method", "stlocal", "miner: stlocal, stcomb or temporal (temporal requires -all)")
		k        = flag.Int("k", 5, "number of patterns to print")
		parallel = flag.Int("parallel", 0, "mining workers for -all (<1 = one per CPU)")
		corpus   = flag.String("corpus", "", "JSONL corpus path (default: read stdin)")
		out      = flag.String("o", "", "write the mined index as a snapshot to this path (requires -all)")
	)
	flag.Parse()
	if *term == "" && !*all {
		fmt.Fprintln(os.Stderr, "stmine: -term is required (or pass -all)")
		os.Exit(2)
	}
	if *out != "" && !*all {
		fmt.Fprintln(os.Stderr, "stmine: -o requires -all (snapshots hold the whole vocabulary)")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *corpus != "" {
		f, err := os.Open(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	col, _, err := corpusio.Load(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmine:", err)
		os.Exit(1)
	}
	if col.NumDocs() == 0 {
		fmt.Fprintln(os.Stderr, "stmine: corpus contains no documents")
		os.Exit(1)
	}
	if *all {
		mineAll(col, *method, *k, *parallel, *out)
		return
	}
	id, ok := col.Dict().Lookup(*term)
	if !ok {
		fmt.Fprintf(os.Stderr, "stmine: term %q not in corpus\n", *term)
		os.Exit(1)
	}
	surface := col.Surface(id)
	switch *method {
	case "stlocal":
		ws, err := core.MineLocal(surface, col.Points(), core.STLocalOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		if len(ws) > *k {
			ws = ws[:*k]
		}
		for i, w := range ws {
			fmt.Printf("#%d  w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s\n",
				i+1, w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		ps := core.STComb(surface, core.STCombOptions{MaxPatterns: *k})
		for i, p := range ps {
			fmt.Printf("#%d  score %.3f  weeks [%d,%d]  %d streams: %s\n",
				i+1, p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	case "temporal", "tb":
		fmt.Fprintln(os.Stderr, "stmine: -method temporal requires -all (it mines the merged stream corpus-wide)")
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", *method)
		os.Exit(2)
	}
}

// mineAll runs the corpus-wide batch miner, prints the top-k patterns
// across all terms (by descending score with deterministic tie-breaks)
// and, when snapshotPath is set, writes the mined index as a snapshot.
// Only the k survivors are formatted: per-term pattern slices are already
// deterministically ordered, so (score, term, position) is a total order.
func mineAll(col *stream.Collection, method string, k, parallel int, snapshotPath string) {
	type scored struct {
		term  int
		idx   int // position within the term's pattern slice
		score float64
	}
	var format func(s scored) string
	start := time.Now()
	var top []scored
	var set *index.PatternSet
	switch method {
	case "stlocal":
		byTerm := search.MineWindowsPar(col, core.STLocalOptions{}, parallel)
		set = index.NewWindowSet(byTerm)
		for term, ws := range byTerm {
			for i, w := range ws {
				top = append(top, scored{term, i, w.Score})
			}
		}
		format = func(s scored) string {
			w := byTerm[s.term][s.idx]
			return fmt.Sprintf("w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s",
				w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		byTerm := search.MineCombPatternsPar(col, core.STCombOptions{}, parallel)
		set = index.NewCombSet(byTerm)
		for term, ps := range byTerm {
			for i, p := range ps {
				top = append(top, scored{term, i, p.Score})
			}
		}
		format = func(s scored) string {
			p := byTerm[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  %d streams: %s",
				p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	case "temporal", "tb":
		byTerm := search.MineTemporalPar(col, nil, parallel)
		set = index.NewTemporalSet(byTerm)
		for term, ivs := range byTerm {
			for i, iv := range ivs {
				top = append(top, scored{term, i, iv.Score})
			}
		}
		format = func(s scored) string {
			iv := byTerm[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  merged stream", iv.Score, iv.Start, iv.End)
		}
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", method)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	sort.Slice(top, func(i, j int) bool {
		if top[i].score != top[j].score {
			return top[i].score > top[j].score
		}
		if top[i].term != top[j].term {
			return top[i].term < top[j].term
		}
		return top[i].idx < top[j].idx
	})
	fmt.Fprintf(os.Stderr, "stmine: mined %d terms, %d patterns in %v\n",
		col.Dict().Len(), set.NumPatterns(), elapsed.Round(time.Millisecond))
	if snapshotPath != "" {
		if err := index.WriteSnapshotFile(snapshotPath, set, col.Dict().Term); err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "stmine: snapshot written to %s (fingerprint %.12s...)\n",
			snapshotPath, set.Fingerprint())
	}
	if len(top) > k {
		top = top[:k]
	}
	for i, s := range top {
		fmt.Printf("#%d  %-18s %s\n", i+1, col.Dict().Term(s.term), format(s))
	}
}

func names(col *stream.Collection, streams []int, max int) string {
	out := ""
	for i, x := range streams {
		if i == max {
			return out + ", ..."
		}
		if i > 0 {
			out += ", "
		}
		out += col.Stream(x).Name
	}
	return out
}
