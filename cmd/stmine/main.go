// Command stmine mines spatiotemporal burstiness patterns from a JSONL
// corpus produced by stgen (-kind topix).
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -term earthquake -method stlocal < corpus.jsonl
//	stmine -term fujimori   -method stcomb  -k 5 < corpus.jsonl
//	stmine -all -method stlocal -parallel 8 < corpus.jsonl
//
// With -all, the entire corpus vocabulary is mined concurrently across a
// bounded worker pool (-parallel workers, default one per CPU) and the
// top-k patterns corpus-wide are printed together with their terms; the
// output is identical for every worker count.
//
// Streams are projected onto the 2-D plane with multidimensional scaling
// over their pairwise geographic distances, as in §6.1 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/search"
	"stburst/internal/stream"
)

func main() {
	var (
		term     = flag.String("term", "", "term to mine (required unless -all)")
		all      = flag.Bool("all", false, "mine every term of the corpus")
		method   = flag.String("method", "stlocal", "miner: stlocal or stcomb")
		k        = flag.Int("k", 5, "number of patterns to print")
		parallel = flag.Int("parallel", 0, "mining workers for -all (<1 = one per CPU)")
	)
	flag.Parse()
	if *term == "" && !*all {
		fmt.Fprintln(os.Stderr, "stmine: -term is required (or pass -all)")
		os.Exit(2)
	}

	col, _, err := corpusio.Load(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmine:", err)
		os.Exit(1)
	}
	if *all {
		mineAll(col, *method, *k, *parallel)
		return
	}
	id, ok := col.Dict().Lookup(*term)
	if !ok {
		fmt.Fprintf(os.Stderr, "stmine: term %q not in corpus\n", *term)
		os.Exit(1)
	}
	surface := col.Surface(id)
	switch *method {
	case "stlocal":
		ws, err := core.MineLocal(surface, col.Points(), core.STLocalOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		if len(ws) > *k {
			ws = ws[:*k]
		}
		for i, w := range ws {
			fmt.Printf("#%d  w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s\n",
				i+1, w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		ps := core.STComb(surface, core.STCombOptions{MaxPatterns: *k})
		for i, p := range ps {
			fmt.Printf("#%d  score %.3f  weeks [%d,%d]  %d streams: %s\n",
				i+1, p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", *method)
		os.Exit(2)
	}
}

// mineAll runs the corpus-wide batch miner and prints the top-k patterns
// across all terms, by descending score with deterministic tie-breaks.
// Only the k survivors are formatted: per-term pattern slices are already
// deterministically ordered, so (score, term, position) is a total order.
func mineAll(col *stream.Collection, method string, k, parallel int) {
	type scored struct {
		term  int
		idx   int // position within the term's pattern slice
		score float64
	}
	var format func(s scored) string
	start := time.Now()
	var top []scored
	var patterns int
	switch method {
	case "stlocal":
		byTerm := search.MineWindowsPar(col, core.STLocalOptions{}, parallel)
		for term, ws := range byTerm {
			patterns += len(ws)
			for i, w := range ws {
				top = append(top, scored{term, i, w.Score})
			}
		}
		format = func(s scored) string {
			w := byTerm[s.term][s.idx]
			return fmt.Sprintf("w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s",
				w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		byTerm := search.MineCombPatternsPar(col, core.STCombOptions{}, parallel)
		for term, ps := range byTerm {
			patterns += len(ps)
			for i, p := range ps {
				top = append(top, scored{term, i, p.Score})
			}
		}
		format = func(s scored) string {
			p := byTerm[s.term][s.idx]
			return fmt.Sprintf("score %.3f  weeks [%d,%d]  %d streams: %s",
				p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", method)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	sort.Slice(top, func(i, j int) bool {
		if top[i].score != top[j].score {
			return top[i].score > top[j].score
		}
		if top[i].term != top[j].term {
			return top[i].term < top[j].term
		}
		return top[i].idx < top[j].idx
	})
	fmt.Fprintf(os.Stderr, "stmine: mined %d terms, %d patterns in %v\n",
		col.Dict().Len(), patterns, elapsed.Round(time.Millisecond))
	if len(top) > k {
		top = top[:k]
	}
	for i, s := range top {
		fmt.Printf("#%d  %-18s %s\n", i+1, col.Dict().Term(s.term), format(s))
	}
}

func names(col *stream.Collection, streams []int, max int) string {
	out := ""
	for i, x := range streams {
		if i == max {
			return out + ", ..."
		}
		if i > 0 {
			out += ", "
		}
		out += col.Stream(x).Name
	}
	return out
}
