// Command stmine mines spatiotemporal burstiness patterns from a JSONL
// corpus produced by stgen (-kind topix).
//
// Usage:
//
//	stgen -kind topix > corpus.jsonl
//	stmine -term earthquake -method stlocal < corpus.jsonl
//	stmine -term fujimori   -method stcomb  -k 5 < corpus.jsonl
//
// Streams are projected onto the 2-D plane with multidimensional scaling
// over their pairwise geographic distances, as in §6.1 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/stream"
)

func main() {
	var (
		term   = flag.String("term", "", "term to mine (required)")
		method = flag.String("method", "stlocal", "miner: stlocal or stcomb")
		k      = flag.Int("k", 5, "number of patterns to print")
	)
	flag.Parse()
	if *term == "" {
		fmt.Fprintln(os.Stderr, "stmine: -term is required")
		os.Exit(2)
	}

	col, _, err := corpusio.Load(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmine:", err)
		os.Exit(1)
	}
	id, ok := col.Dict().Lookup(*term)
	if !ok {
		fmt.Fprintf(os.Stderr, "stmine: term %q not in corpus\n", *term)
		os.Exit(1)
	}
	surface := col.Surface(id)
	switch *method {
	case "stlocal":
		ws, err := core.MineLocal(surface, col.Points(), core.STLocalOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmine:", err)
			os.Exit(1)
		}
		if len(ws) > *k {
			ws = ws[:*k]
		}
		for i, w := range ws {
			fmt.Printf("#%d  w-score %.3f  weeks [%d,%d]  region %v  %d streams: %s\n",
				i+1, w.Score, w.Start, w.End, w.Rect, len(w.Streams), names(col, w.Streams, 6))
		}
	case "stcomb":
		ps := core.STComb(surface, core.STCombOptions{MaxPatterns: *k})
		for i, p := range ps {
			fmt.Printf("#%d  score %.3f  weeks [%d,%d]  %d streams: %s\n",
				i+1, p.Score, p.Start, p.End, len(p.Streams), names(col, p.Streams, 6))
		}
	default:
		fmt.Fprintf(os.Stderr, "stmine: unknown method %q\n", *method)
		os.Exit(2)
	}
}

func names(col *stream.Collection, streams []int, max int) string {
	out := ""
	for i, x := range streams {
		if i == max {
			return out + ", ..."
		}
		if i > 0 {
			out += ", "
		}
		out += col.Stream(x).Name
	}
	return out
}
