// Command stgate fronts a sharded stburst cluster: one HTTP coordinator
// over N stserve members, each serving one shard of the vocabulary
// partition written by stmine -shards (all members load the same full
// corpus; only the pattern bundles are partitioned).
//
// Usage:
//
//	stmine -corpus corpus.jsonl -all -method all -shards 3 -o corpus.bundle
//	stserve -addr :8081 -corpus corpus.jsonl -snapshot corpus-shard0-of3.bundle &
//	stserve -addr :8082 -corpus corpus.jsonl -snapshot corpus-shard1-of3.bundle &
//	stserve -addr :8083 -corpus corpus.jsonl -snapshot corpus-shard2-of3.bundle &
//	stgate -addr :8080 -shard http://localhost:8081 \
//	       -shard http://localhost:8082 -shard http://localhost:8083
//
// The gateway polls each member's /v1/healthz, refuses to serve unless
// the members form exactly one consistent partition (every shard index
// once, same shard count, partition scheme, corpus fingerprint and
// store generation), and answers the read surface of the /v1 API —
// search pages are bit-identical to an unsharded stserve over the same
// corpus and patterns. The standing-query surface (/v1/subscriptions,
// /v1/alerts/stream) answers 501: alert matching runs in the ingest
// path, so subscriptions belong on an unsharded stserve. See
// internal/gate for the protocol and the strict failure policy.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stburst/internal/gate"
)

func main() {
	var members []string
	addr := flag.String("addr", ":8080", "listen address")
	pollInterval := flag.Duration("poll-interval", gate.DefaultPollInterval, "member health poll cadence")
	shardTimeout := flag.Duration("shard-timeout", gate.DefaultShardTimeout, "per-shard upstream request timeout")
	flag.Func("shard", "base URL of one shard member (repeat once per shard)", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty URL")
		}
		members = append(members, v)
		return nil
	})
	flag.Parse()
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "stgate: at least one -shard member is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := gate.New(gate.Config{
		Members:      members,
		PollInterval: *pollInterval,
		ShardTimeout: *shardTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// First poll before the listener opens, so a fully-booted cluster is
	// servable from the first request; a still-booting one answers 503
	// until the poll loop sees every member.
	g.Refresh(ctx)
	go g.Run(ctx)

	log.Printf("gateway for %d members listening on %s", len(members), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: g,
		// Scatter-gather adds one upstream round trip, still bounded by
		// the per-shard timeout; the same stalled-client ceilings as
		// stserve apply.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately instead of draining
		log.Printf("shutting down: draining in-flight requests")
		drain, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(drain); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
		log.Printf("drained; bye")
	}
}
