// Command stgen generates synthetic spatiotemporal corpora as JSONL.
//
// Usage:
//
//	stgen -kind topix [-seed N] [-articles N] [-vocab N] [-tokens N] > corpus.jsonl
//	stgen -kind distgen|randgen [-streams N] [-timeline N] [-terms N] [-patterns N] > surfaces.jsonl
//
// For -kind topix each output line is a document:
//
//	{"stream":"Peru","time":31,"tokens":["fujimori","sentenced",...],"event":17}
//
// (event is the ground-truth label, 0 for background). The first line is
// a header describing the streams. For the artificial generators each
// line is one injected pattern's ground truth followed by per-term
// frequency series of its member streams.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stburst/internal/gen"
)

type header struct {
	Kind     string   `json:"kind"`
	Streams  []string `json:"streams"`
	Timeline int      `json:"timeline"`
}

type docLine struct {
	Stream string         `json:"stream"`
	Time   int            `json:"time"`
	Counts map[string]int `json:"counts"`
	Event  int            `json:"event"`
}

type patternLine struct {
	Term    int         `json:"term"`
	Streams []int       `json:"streams"`
	Start   int         `json:"start"`
	End     int         `json:"end"`
	Series  [][]float64 `json:"series"` // member streams × timeline
}

func main() {
	var (
		kind     = flag.String("kind", "topix", "corpus kind: topix, distgen, randgen")
		seed     = flag.Int64("seed", 1, "random seed")
		articles = flag.Float64("articles", 0, "topix: mean articles per country-week (0 = default)")
		vocab    = flag.Int("vocab", 0, "topix: vocabulary size (0 = default)")
		tokens   = flag.Float64("tokens", 0, "topix: mean tokens per article (0 = default)")
		streams  = flag.Int("streams", 500, "artificial: number of streams")
		timeline = flag.Int("timeline", 365, "artificial: timeline length")
		terms    = flag.Int("terms", 10000, "artificial: number of terms")
		patterns = flag.Int("patterns", 1000, "artificial: number of injected patterns")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)

	switch *kind {
	case "topix":
		tp, err := gen.NewTopix(gen.TopixConfig{
			Seed:             *seed,
			WeeklyArticles:   *articles,
			Vocab:            *vocab,
			TokensPerArticle: *tokens,
			RetainCounts:     true,
		})
		if err != nil {
			fatal(err)
		}
		col := tp.Col
		h := header{Kind: "topix", Timeline: col.Length()}
		for i := 0; i < col.NumStreams(); i++ {
			h.Streams = append(h.Streams, col.Stream(i).Name)
		}
		must(enc.Encode(h))
		for id := 0; id < col.NumDocs(); id++ {
			d := col.Doc(id)
			counts := make(map[string]int, len(d.Counts))
			for term, n := range d.Counts {
				counts[col.Dict().Term(term)] = n
			}
			must(enc.Encode(docLine{
				Stream: col.Stream(d.Stream).Name,
				Time:   d.Time,
				Counts: counts,
				Event:  tp.Labels[id],
			}))
		}
	case "distgen", "randgen":
		mode := gen.DistGen
		if *kind == "randgen" {
			mode = gen.RandGen
		}
		ds := gen.NewSynth(gen.SynthConfig{
			Streams:  *streams,
			Timeline: *timeline,
			Terms:    *terms,
			Patterns: *patterns,
			Mode:     mode,
			Seed:     *seed,
		})
		must(enc.Encode(header{Kind: *kind, Timeline: *timeline}))
		for _, p := range ds.Patterns() {
			line := patternLine{Term: p.Term, Streams: p.Streams, Start: p.Start, End: p.End}
			for _, x := range p.Streams {
				line.Series = append(line.Series, ds.Series(p.Term, x))
			}
			must(enc.Encode(line))
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stgen:", err)
	os.Exit(1)
}
