// Command stgen generates synthetic spatiotemporal corpora as JSONL.
//
// Usage:
//
//	stgen -kind topix [-seed N] [-articles N] [-vocab N] [-tokens N] > corpus.jsonl
//	stgen -kind topix -follow -rate 100 -o feed.jsonl
//	stgen -kind distgen|randgen [-streams N] [-timeline N] [-terms N] [-patterns N] > surfaces.jsonl
//
// -follow turns stgen into a live feed for the stserve -tail connector:
// instead of dumping the whole corpus at once it appends one document
// line to -o every 1/-rate seconds, flushing per line so a tailer sees
// whole documents promptly. The file is created with its header line if
// missing; re-running with the same seed resumes exactly where the file
// left off (a torn last line from a killed writer is truncated away
// first), because the same seed always generates the same sequence.
//
// For -kind topix each output line is a document:
//
//	{"stream":"Peru","time":31,"tokens":["fujimori","sentenced",...],"event":17}
//
// (event is the ground-truth label, 0 for background). The first line is
// a header describing the streams. For the artificial generators each
// line is one injected pattern's ground truth followed by per-term
// frequency series of its member streams.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stburst/internal/gen"
)

type header struct {
	Kind     string   `json:"kind"`
	Streams  []string `json:"streams"`
	Timeline int      `json:"timeline"`
}

type docLine struct {
	Stream string         `json:"stream"`
	Time   int            `json:"time"`
	Counts map[string]int `json:"counts"`
	Event  int            `json:"event"`
}

type patternLine struct {
	Term    int         `json:"term"`
	Streams []int       `json:"streams"`
	Start   int         `json:"start"`
	End     int         `json:"end"`
	Series  [][]float64 `json:"series"` // member streams × timeline
}

func main() {
	var (
		kind     = flag.String("kind", "topix", "corpus kind: topix, distgen, randgen")
		seed     = flag.Int64("seed", 1, "random seed")
		articles = flag.Float64("articles", 0, "topix: mean articles per country-week (0 = default)")
		vocab    = flag.Int("vocab", 0, "topix: vocabulary size (0 = default)")
		tokens   = flag.Float64("tokens", 0, "topix: mean tokens per article (0 = default)")
		streams  = flag.Int("streams", 500, "artificial: number of streams")
		timeline = flag.Int("timeline", 365, "artificial: timeline length")
		terms    = flag.Int("terms", 10000, "artificial: number of terms")
		patterns = flag.Int("patterns", 1000, "artificial: number of injected patterns")
		follow   = flag.Bool("follow", false, "topix: append documents to -o at -rate docs/sec instead of dumping to stdout, resuming a partially written file")
		rate     = flag.Float64("rate", 50, "with -follow: documents appended per second")
		outPath  = flag.String("o", "", "with -follow: the feed file to create or resume (required)")
	)
	flag.Parse()
	if *follow {
		if *kind != "topix" {
			fatal(fmt.Errorf("-follow supports only -kind topix"))
		}
		if *outPath == "" {
			fatal(fmt.Errorf("-follow requires -o: a feed file to append to"))
		}
		if *rate <= 0 {
			fatal(fmt.Errorf("-rate must be positive, got %v", *rate))
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)

	switch *kind {
	case "topix":
		tp, err := gen.NewTopix(gen.TopixConfig{
			Seed:             *seed,
			WeeklyArticles:   *articles,
			Vocab:            *vocab,
			TokensPerArticle: *tokens,
			RetainCounts:     true,
		})
		if err != nil {
			fatal(err)
		}
		if *follow {
			must(followTopix(tp, *outPath, *rate))
			return
		}
		col := tp.Col
		must(enc.Encode(topixHeader(tp)))
		for id := 0; id < col.NumDocs(); id++ {
			must(enc.Encode(topixDoc(tp, id)))
		}
	case "distgen", "randgen":
		mode := gen.DistGen
		if *kind == "randgen" {
			mode = gen.RandGen
		}
		ds := gen.NewSynth(gen.SynthConfig{
			Streams:  *streams,
			Timeline: *timeline,
			Terms:    *terms,
			Patterns: *patterns,
			Mode:     mode,
			Seed:     *seed,
		})
		must(enc.Encode(header{Kind: *kind, Timeline: *timeline}))
		for _, p := range ds.Patterns() {
			line := patternLine{Term: p.Term, Streams: p.Streams, Start: p.Start, End: p.End}
			for _, x := range p.Streams {
				line.Series = append(line.Series, ds.Series(p.Term, x))
			}
			must(enc.Encode(line))
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func topixHeader(tp *gen.Topix) header {
	col := tp.Col
	h := header{Kind: "topix", Timeline: col.Length()}
	for i := 0; i < col.NumStreams(); i++ {
		h.Streams = append(h.Streams, col.Stream(i).Name)
	}
	return h
}

func topixDoc(tp *gen.Topix, id int) docLine {
	col := tp.Col
	d := col.Doc(id)
	counts := make(map[string]int, len(d.Counts))
	for term, n := range d.Counts {
		counts[col.Dict().Term(term)] = n
	}
	return docLine{
		Stream: col.Stream(d.Stream).Name,
		Time:   d.Time,
		Counts: counts,
		Event:  tp.Labels[id],
	}
}

// followTopix appends the generated documents to path one line every
// 1/rate seconds, creating the file (header first) when it is missing
// and otherwise resuming after the last complete line — generation is
// seed-deterministic, so the next document is always line count minus
// the header. A torn final line (a previous follower killed mid-write)
// is truncated away before appending; json.Encoder sorts the count
// maps' keys, so resumed bytes match what a single run would have
// produced.
func followTopix(tp *gen.Topix, path string, rate float64) error {
	col := tp.Col
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	lines, err := resumeTruncate(f)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	next := 0
	if lines == 0 {
		if err := enc.Encode(topixHeader(tp)); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	} else {
		next = lines - 1
	}
	if next >= col.NumDocs() {
		fmt.Fprintf(os.Stderr, "stgen: %s already holds all %d documents\n", path, col.NumDocs())
		return nil
	}
	fmt.Fprintf(os.Stderr, "stgen: following %s from document %d/%d at %g docs/sec\n",
		path, next, col.NumDocs(), rate)
	interval := time.Duration(float64(time.Second) / rate)
	for id := next; id < col.NumDocs(); id++ {
		if err := enc.Encode(topixDoc(tp, id)); err != nil {
			return err
		}
		// One flush per line: the tailer must never wait on a half-
		// buffered document, and a kill tears at most the line in
		// flight.
		if err := w.Flush(); err != nil {
			return err
		}
		time.Sleep(interval)
	}
	fmt.Fprintf(os.Stderr, "stgen: feed complete: %d documents in %s\n", col.NumDocs(), path)
	return nil
}

// resumeTruncate counts the complete lines in f and truncates any
// trailing partial line, leaving the write offset at the end.
func resumeTruncate(f *os.File) (lines int, err error) {
	r := bufio.NewReader(f)
	var off, lastNL int64
	for {
		b, err := r.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		off++
		if b == '\n' {
			lines++
			lastNL = off
		}
	}
	if off > lastNL {
		if err := f.Truncate(lastNL); err != nil {
			return 0, err
		}
	}
	if _, err := f.Seek(lastNL, io.SeekStart); err != nil {
		return 0, err
	}
	return lines, nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stgen:", err)
	os.Exit(1)
}
