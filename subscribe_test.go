package stburst

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestSubscriptionValidate(t *testing.T) {
	valid := Subscription{Terms: []string{"earthquake"}, Kind: KindRegional,
		Region: &andesRegion, Time: &andesTime, Webhook: "http://localhost:9/sink"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid subscription rejected: %v", err)
	}
	cases := map[string]Subscription{
		"no terms":          {},
		"bad kind":          {Terms: []string{"a"}, Kind: Kind(9)},
		"nan min score":     {Terms: []string{"a"}, MinScore: math.NaN()},
		"inverted region":   {Terms: []string{"a"}, Region: &Rect{MinX: 5, MaxX: 1}},
		"inverted timespan": {Terms: []string{"a"}, Time: &Timespan{Start: 7, End: 3}},
		"relative webhook":  {Terms: []string{"a"}, Webhook: "/sink"},
		"ftp webhook":       {Terms: []string{"a"}, Webhook: "ftp://host/sink"},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

func TestSubscribeCRUD(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	if got := s.NumSubscriptions(); got != 0 {
		t.Fatalf("fresh store has %d subscriptions", got)
	}
	// Multi-word entries tokenize (lowercased, every token contributes)
	// and duplicates collapse.
	added, err := s.Subscribe(Subscription{Owner: "ops", Terms: []string{"Earthquake RESCUE", "rescue"}})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if added.ID != 1 || !reflect.DeepEqual(added.Terms, []string{"earthquake", "rescue"}) {
		t.Fatalf("Subscribe returned %+v", added)
	}
	// Unknown and future vocabulary is accepted.
	if _, err := s.Subscribe(Subscription{Terms: []string{"volcano"}}); err != nil {
		t.Fatalf("Subscribe(unknown term): %v", err)
	}
	if _, err := s.Subscribe(Subscription{Terms: []string{"???"}}); err == nil {
		t.Fatal("Subscribe accepted a term that tokenizes to nothing")
	}
	got, ok := s.LookupSubscription(added.ID)
	if !ok || got.Owner != "ops" {
		t.Fatalf("LookupSubscription = %+v, %v", got, ok)
	}
	if list := s.Subscriptions(); len(list) != 2 || list[0].ID != 1 || list[1].ID != 2 {
		t.Fatalf("Subscriptions = %+v", list)
	}
	if !s.Unsubscribe(added.ID) || s.Unsubscribe(added.ID) {
		t.Fatal("Unsubscribe must succeed exactly once")
	}
	if got := s.NumSubscriptions(); got != 1 {
		t.Fatalf("NumSubscriptions after removal = %d", got)
	}
}

// bruteForceAlerts recomputes one batch's alerts the slow way — every
// registered subscription checked against every dirty term's freshly
// installed patterns, no inverted index — with the same predicate
// semantics as the matcher. It is the oracle TestIngestAlertOracle
// pins matchDirtyLocked against.
func bruteForceAlerts(s *Store, dirty []int) []Alert {
	resident := s.indexes.Load()
	gen := s.Generation()
	dict := s.c.col.Dict()
	points := s.c.col.Points()
	terms := append([]int(nil), dirty...)
	sort.Ints(terms)
	var alerts []Alert
	for _, spec := range s.Subscriptions() {
		for _, id := range terms {
			term := dict.Term(id)
			watched := false
			for _, st := range spec.Terms {
				if st == term {
					watched = true
					break
				}
			}
			if !watched {
				continue
			}
			for _, k := range Kinds() {
				if spec.Kind != KindAny && spec.Kind != k {
					continue
				}
				ix := resident[int(k)-1]
				if ix == nil {
					continue
				}
				count, best, start, end := matchPatterns(ix, id, toInternalSub(spec), points)
				if count == 0 {
					continue
				}
				alerts = append(alerts, Alert{
					SubscriptionID: spec.ID, Owner: spec.Owner, Generation: gen,
					Term: term, Kind: k, Score: best, Patterns: count, Start: start, End: end,
				})
			}
		}
	}
	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].SubscriptionID != alerts[j].SubscriptionID {
			return alerts[i].SubscriptionID < alerts[j].SubscriptionID
		}
		return false
	})
	return alerts
}

// TestIngestAlertOracle registers predicates across all three kinds
// (plus ones that must stay silent) and checks that each Ingest's
// matcher output equals the brute-force every-subscription scan, and
// that the alerts themselves make sense.
func TestIngestAlertOracle(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)

	subsSpecs := []Subscription{
		{Owner: "any", Terms: []string{"earthquake"}},
		{Owner: "regional-andes", Terms: []string{"earthquake"}, Kind: KindRegional, Region: &andesRegion},
		{Owner: "regional-japan", Terms: []string{"earthquake"}, Kind: KindRegional, Region: &japanRegion},
		{Owner: "comb", Terms: []string{"earthquake"}, Kind: KindCombinatorial},
		{Owner: "temporal-late", Terms: []string{"earthquake"}, Kind: KindTemporal, Time: &japanTime},
		{Owner: "rescue", Terms: []string{"rescue"}, Kind: KindTemporal},
		{Owner: "high-bar", Terms: []string{"earthquake"}, MinScore: 1e9},
		{Owner: "silent", Terms: []string{"volcano"}},
	}
	for _, spec := range subsSpecs {
		if _, err := s.Subscribe(spec); err != nil {
			t.Fatalf("Subscribe(%s): %v", spec.Owner, err)
		}
	}

	var mu sync.Mutex
	var got []Alert
	s.SetAlertSink(func(alerts []Alert) {
		mu.Lock()
		defer mu.Unlock()
		got = append([]Alert(nil), alerts...)
	})

	// Reinforce the andes burst so "earthquake" (and "rescue") go dirty.
	var docs []IncomingDocument
	for w := 4; w <= 6; w++ {
		docs = append(docs,
			IncomingDocument{Stream: 0, Time: w, Text: "earthquake rescue teams dig"},
			IncomingDocument{Stream: 1, Time: w, Text: "earthquake tremors again"})
	}
	res, err := s.Ingest(context.Background(), docs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}

	// Recompute the dirty-term ID set the matcher saw.
	dict := s.c.col.Dict()
	var dirty []int
	for _, term := range []string{"earthquake", "rescue", "teams", "dig", "tremors", "again"} {
		if id, ok := dict.Lookup(term); ok {
			dirty = append(dirty, id)
		}
	}
	want := bruteForceAlerts(s, dirty)

	mu.Lock()
	if len(got) == 0 {
		t.Fatal("sink received no alerts")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matcher disagrees with brute force:\n got %+v\nwant %+v", got, want)
	}
	byOwner := make(map[string][]Alert)
	for _, a := range got {
		if a.Generation != res.Generation {
			t.Fatalf("alert generation %d, ingest generation %d", a.Generation, res.Generation)
		}
		byOwner[a.Owner] = append(byOwner[a.Owner], a)
	}
	for _, owner := range []string{"silent", "high-bar"} {
		if as := byOwner[owner]; len(as) != 0 {
			t.Fatalf("%s subscription fired: %+v", owner, as)
		}
	}
	for _, owner := range []string{"any", "regional-andes", "comb", "rescue"} {
		if len(byOwner[owner]) == 0 {
			t.Fatalf("%s subscription never fired; got %+v", owner, byOwner)
		}
	}
	for _, a := range byOwner["regional-andes"] {
		if a.Kind != KindRegional || a.Term != "earthquake" {
			t.Fatalf("regional-andes alert %+v", a)
		}
	}
	// The temporal-late subscription is span-gated to the japan weeks; any
	// alert it gets must overlap that span.
	for _, a := range byOwner["temporal-late"] {
		if a.End < japanTime.Start || a.Start > japanTime.End {
			t.Fatalf("temporal-late alert outside its span: %+v", a)
		}
	}
	got = nil
	mu.Unlock()

	// A batch whose dirty terms nobody watches may only alert through
	// terms an earlier batch left watched — never the new ones.
	if _, err := s.Ingest(context.Background(), []IncomingDocument{
		{Stream: 0, Time: 2, Text: "quiet bureaucratic memo"}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, a := range got {
		switch a.Term {
		case "quiet", "bureaucratic", "memo":
			t.Fatalf("unwatched dirty term produced an alert: %+v", a)
		}
	}
}

// TestSubscriptionPersistence round-trips subscriptions through
// Save/LoadStore and confirms pre-subscription bundles load as zero
// subscriptions.
func TestSubscriptionPersistence(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)

	// No subscriptions: the bundle stays byte-identical to the
	// pre-subscription format and reloads with zero subscriptions.
	var plain bytes.Buffer
	if err := s.Save(&plain); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadStore(bytes.NewReader(plain.Bytes()), c)
	if err != nil {
		t.Fatalf("LoadStore(plain): %v", err)
	}
	if got := loaded.NumSubscriptions(); got != 0 {
		t.Fatalf("pre-subscription bundle loaded %d subscriptions", got)
	}

	specs := []Subscription{
		{Owner: "ops", Terms: []string{"earthquake"}, Kind: KindRegional,
			Region: &andesRegion, Time: &andesTime, MinScore: 0.5,
			Webhook: "http://localhost:9999/sink"},
		{Owner: "sse-only", Terms: []string{"rescue", "volcano"}},
	}
	for _, spec := range specs {
		if _, err := s.Subscribe(spec); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	s.Unsubscribe(1) // a gap: the surviving ID 2 must not re-pack to 1

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Attach to a freshly built identical collection so the original and
	// reloaded stores ingest into separate corpora below.
	reloaded, err := LoadStore(bytes.NewReader(buf.Bytes()), twoBurstCollection(t))
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	if got, want := reloaded.Subscriptions(), s.Subscriptions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("subscriptions after round-trip:\n got %+v\nwant %+v", got, want)
	}
	if reloaded.Generation() != s.Generation() {
		t.Fatalf("generation after round-trip = %d, want %d", reloaded.Generation(), s.Generation())
	}
	// New registrations resume past every persisted ID.
	added, err := reloaded.Subscribe(Subscription{Terms: []string{"tsunami"}})
	if err != nil {
		t.Fatalf("Subscribe after reload: %v", err)
	}
	if added.ID != 3 {
		t.Fatalf("post-reload ID = %d, want 3", added.ID)
	}
	// And the restored registry matches on ingest exactly like the
	// original: same alerts from the same batch.
	var origAlerts, reAlerts []Alert
	s.SetAlertSink(func(a []Alert) { origAlerts = append([]Alert(nil), a...) })
	reloaded.Unsubscribe(added.ID)
	reloaded.SetAlertSink(func(a []Alert) { reAlerts = append([]Alert(nil), a...) })
	batch := []IncomingDocument{{Stream: 0, Time: 5, Text: "earthquake rescue earthquake"}}
	if _, err := s.Ingest(context.Background(), batch); err != nil {
		t.Fatalf("Ingest(original): %v", err)
	}
	if _, err := reloaded.Ingest(context.Background(), batch); err != nil {
		t.Fatalf("Ingest(reloaded): %v", err)
	}
	if !reflect.DeepEqual(origAlerts, reAlerts) {
		t.Fatalf("restored registry alerts differ:\n got %+v\nwant %+v", reAlerts, origAlerts)
	}
}

// TestConcurrentIngestSubscriptionCRUD hammers Subscribe/Unsubscribe/
// List against concurrent Ingest (with an active sink) — the race-suite
// case for the subscriptions subsystem.
func TestConcurrentIngestSubscriptionCRUD(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	s.SetAlertSink(func(alerts []Alert) {
		for _, a := range alerts {
			_ = a.Score
		}
	})
	if _, err := s.Subscribe(Subscription{Terms: []string{"earthquake"}}); err != nil {
		t.Fatal(err)
	}
	const iters = 20
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, err := s.Ingest(context.Background(), []IncomingDocument{
				{Stream: i % 4, Time: i % 16, Text: "earthquake rescue update"}})
			if err != nil {
				t.Errorf("Ingest: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			added, err := s.Subscribe(Subscription{Terms: []string{"earthquake", "rescue"}, Kind: KindTemporal})
			if err != nil {
				t.Errorf("Subscribe: %v", err)
				return
			}
			s.Unsubscribe(added.ID)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.Subscriptions()
			s.NumSubscriptions()
			s.LookupSubscription(1)
		}
	}()
	wg.Wait()
}

// BenchmarkAlertMatch pins the tentpole's complexity claim: per-ingest
// match cost is a function of the dirty-term set, not the registered-
// subscription count. The subscription population grows 100× across
// sub-benchmarks while the number of subscriptions watching the dirty
// terms stays constant, so ns/op should stay flat.
func BenchmarkAlertMatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			c := twoBurstCollectionB(b)
			s, err := c.MineStore(context.Background(), nil)
			if err != nil {
				b.Fatal(err)
			}
			// A fixed handful watch the dirty terms; the rest watch
			// vocabulary the batch never touches.
			watchers := []Subscription{
				{Terms: []string{"earthquake"}},
				{Terms: []string{"earthquake"}, Kind: KindRegional, Region: &andesRegion},
				{Terms: []string{"rescue"}, Kind: KindTemporal},
			}
			for _, spec := range watchers {
				if _, err := s.Subscribe(spec); err != nil {
					b.Fatal(err)
				}
			}
			for i := len(watchers); i < n; i++ {
				if _, err := s.Subscribe(Subscription{Terms: []string{fmt.Sprintf("filler%d", i)}}); err != nil {
					b.Fatal(err)
				}
			}
			dict := s.c.col.Dict()
			var dirty []int
			for _, term := range []string{"earthquake", "rescue"} {
				id, ok := dict.Lookup(term)
				if !ok {
					b.Fatalf("term %q not interned", term)
				}
				dirty = append(dirty, id)
			}
			s.writeMu.Lock()
			defer s.writeMu.Unlock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if alerts := s.matchDirtyLocked(dirty); len(alerts) == 0 {
					b.Fatal("matcher found nothing")
				}
			}
		})
	}
}

// twoBurstCollectionB is twoBurstCollection for benchmarks.
func twoBurstCollectionB(b *testing.B) *Collection {
	b.Helper()
	streams := []StreamInfo{
		{Name: "lima", Location: Point{X: 0, Y: 0}},
		{Name: "quito", Location: Point{X: 2, Y: 1}},
		{Name: "tokyo", Location: Point{X: 90, Y: 80}},
		{Name: "osaka", Location: Point{X: 92, Y: 78}},
	}
	c := NewCollection(streams, 16)
	add := func(s, w int, text string) {
		b.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			b.Fatal(err)
		}
	}
	for w := 0; w < 16; w++ {
		add(0, w, "local politics and weather report")
		add(1, w, "markets update and weather report")
		add(2, w, "technology news and weather report")
		add(3, w, "shipping schedules and weather report")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake damage rescue earthquake")
			add(1, w, "earthquake tremors felt across the border")
		}
	}
	for w := 10; w <= 12; w++ {
		for i := 0; i < 4; i++ {
			add(2, w, "earthquake strikes offshore rescue crews deploy")
			add(3, w, "earthquake aftershocks rattle the coast")
		}
	}
	return c
}
