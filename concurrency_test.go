package stburst

// The race/determinism suite for the corpus-wide batch miners and the
// pattern index. Run it under the race detector (`make race` or
// `go test -race ./...`): the hammer tests are designed to surface any
// shared mutable state in the mining stack, and the determinism tests
// assert byte-identical output across worker counts and repeated runs.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"stburst/internal/search"
)

// synthCollection builds a deterministic multi-term corpus: several
// clustered streams over a timeline, background chatter for every term,
// and localized bursts injected for a subset of terms. Everything is
// driven by a fixed seed, so two calls build identical collections.
func synthCollection(tb testing.TB, streams, timeline, vocab int) *Collection {
	tb.Helper()
	infos := make([]StreamInfo, streams)
	rng := rand.New(rand.NewSource(17))
	for i := range infos {
		infos[i] = StreamInfo{
			Name:     fmt.Sprintf("city%02d", i),
			Location: Point{X: float64(i%4)*10 + rng.Float64(), Y: float64(i/4)*10 + rng.Float64()},
		}
	}
	c := NewCollection(infos, timeline)
	add := func(s, w int, text string) {
		tb.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			tb.Fatal(err)
		}
	}
	terms := make([]string, vocab)
	for i := range terms {
		terms[i] = fmt.Sprintf("topic%03d", i)
	}
	// Background: every stream mentions a rotating pair of terms weekly.
	for w := 0; w < timeline; w++ {
		for s := 0; s < streams; s++ {
			a := terms[(s+w)%vocab]
			b := terms[(s*3+w*7)%vocab]
			add(s, w, a+" report "+b+" update")
		}
	}
	// Bursts: every third term bursts in a 2-4 stream neighbourhood over
	// a short window, with burst mass well above background.
	for ti := 0; ti < vocab; ti += 3 {
		start := (ti * 5) % (timeline - 6)
		origin := ti % streams
		width := 2 + ti%3
		for w := start; w < start+4; w++ {
			for k := 0; k < width; k++ {
				s := (origin + k) % streams
				for rep := 0; rep < 5; rep++ {
					add(s, w, terms[ti]+" surge "+terms[ti])
				}
			}
		}
	}
	return c
}

// equalWindows compares two regional pattern slices exactly, treating nil
// and empty as equal.
func equalWindows(a, b []RegionalPattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rect != b[i].Rect || a[i].Start != b[i].Start || a[i].End != b[i].End ||
			a[i].Score != b[i].Score || len(a[i].Streams) != len(b[i].Streams) {
			return false
		}
		for j := range a[i].Streams {
			if a[i].Streams[j] != b[i].Streams[j] {
				return false
			}
		}
	}
	return true
}

// equalCombs compares two combinatorial pattern slices exactly.
func equalCombs(a, b []CombinatorialPattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Score != b[i].Score ||
			len(a[i].Streams) != len(b[i].Streams) || len(a[i].Intervals) != len(b[i].Intervals) {
			return false
		}
		for j := range a[i].Streams {
			if a[i].Streams[j] != b[i].Streams[j] {
				return false
			}
		}
		for j := range a[i].Intervals {
			if a[i].Intervals[j] != b[i].Intervals[j] {
				return false
			}
		}
	}
	return true
}

func TestMineAllRegionalMatchesSequentialLoop(t *testing.T) {
	c := synthCollection(t, 8, 24, 30)
	for _, workers := range []int{1, 4} {
		ix := c.MineAllRegional(nil, workers)
		if ix.Kind() != "regional" {
			t.Fatalf("kind = %q", ix.Kind())
		}
		if ix.NumPatterns() == 0 {
			t.Fatal("batch miner found no patterns")
		}
		for _, term := range c.Terms() {
			want := c.RegionalPatterns(term, nil)
			got := ix.RegionalPatterns(term)
			if !equalWindows(got, want) {
				t.Fatalf("workers=%d term=%q: batch %+v != sequential %+v", workers, term, got, want)
			}
		}
	}
}

func TestMineAllCombinatorialMatchesSequentialLoop(t *testing.T) {
	c := synthCollection(t, 8, 24, 30)
	for _, opts := range []*CombinatorialOptions{
		nil,
		{MaxPatterns: 2},
		{Detector: DetectorKleinberg},
	} {
		ix := c.MineAllCombinatorial(opts, 3)
		for _, term := range c.Terms() {
			want := c.CombinatorialPatterns(term, opts)
			got := ix.CombinatorialPatterns(term)
			if !equalCombs(got, want) {
				t.Fatalf("opts=%+v term=%q: batch %+v != sequential %+v", opts, term, got, want)
			}
		}
	}
}

func TestMineAllTemporalMatchesSequentialLoop(t *testing.T) {
	c := synthCollection(t, 8, 24, 30)
	ix := c.MineAllTemporal(4)
	for _, term := range c.Terms() {
		want := c.TemporalBursts(term)
		got := ix.TemporalBursts(term)
		if len(got) != len(want) {
			t.Fatalf("term %q: %d vs %d intervals", term, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("term %q interval %d: %+v != %+v", term, i, got[i], want[i])
			}
		}
	}
}

// TestMineAllDeterminism asserts byte-identical pattern output across
// worker counts (1, 4, GOMAXPROCS) and across repeated runs on freshly
// rebuilt collections, via the index's canonical fingerprint.
func TestMineAllDeterminism(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	type prints struct{ regional, comb, temporal string }
	var golden prints
	for run := 0; run < 3; run++ {
		c := synthCollection(t, 8, 24, 30)
		for _, w := range workerCounts {
			got := prints{
				regional: c.MineAllRegional(nil, w).Fingerprint(),
				comb:     c.MineAllCombinatorial(nil, w).Fingerprint(),
				temporal: c.MineAllTemporal(w).Fingerprint(),
			}
			if run == 0 && w == 1 {
				golden = got
				continue
			}
			if got != golden {
				t.Fatalf("run=%d workers=%d fingerprints diverged:\n got %+v\nwant %+v", run, w, got, golden)
			}
		}
	}
	if golden.regional == golden.comb || golden.comb == golden.temporal {
		t.Fatal("distinct pattern kinds should fingerprint differently")
	}
}

// TestConcurrentCollectionReads hammers a single Collection from many
// goroutines doing concurrent read/mine/search calls. Run under -race.
func TestConcurrentCollectionReads(t *testing.T) {
	c := synthCollection(t, 6, 20, 18)
	ix := c.MineAllRegional(nil, 2)
	terms := c.Terms()
	goroutines := 16
	iters := 8
	if testing.Short() {
		goroutines, iters = 8, 3
	}
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				term := terms[(g*31+i)%len(terms)]
				switch (g + i) % 5 {
				case 0:
					c.RegionalPatterns(term, nil)
				case 1:
					c.CombinatorialPatterns(term, nil)
				case 2:
					c.TemporalBursts(term)
				case 3:
					c.TermFrequency(term, g%c.NumStreams(), i%c.Timeline())
				case 4:
					ix.Search(term, 3)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentBatchMines runs several corpus-wide batch mines over the
// same collection simultaneously, each itself multi-worker. Run under
// -race: this is the densest read pressure the engine generates.
func TestConcurrentBatchMines(t *testing.T) {
	c := synthCollection(t, 6, 20, 18)
	want := c.MineAllRegional(nil, 1).Fingerprint()
	var wg sync.WaitGroup
	results := make([]string, 4)
	wg.Add(len(results))
	for i := range results {
		go func(i int) {
			defer wg.Done()
			results[i] = c.MineAllRegional(nil, 2).Fingerprint()
		}(i)
	}
	wg.Wait()
	for i, fp := range results {
		if fp != want {
			t.Fatalf("concurrent mine %d fingerprint %s != sequential %s", i, fp, want)
		}
	}
}

// TestSearchAnswersFromIndexWithoutRemining verifies the acceptance
// criterion that the search layer answers repeated queries from the
// pattern index: per-term mining happens during MineAll* and never again,
// counted through the search layer's mining-invocation counter.
func TestSearchAnswersFromIndexWithoutRemining(t *testing.T) {
	c := synthCollection(t, 6, 20, 18)
	before := search.TermsMined()
	ix := c.MineAllRegional(nil, 2)
	mined := search.TermsMined() - before
	if mined == 0 {
		t.Fatal("MineAllRegional should mine terms")
	}
	// First query builds the cached engine; none of the queries re-mine.
	afterMine := search.TermsMined()
	for i := 0; i < 25; i++ {
		ix.Search("topic000 surge", 5)
		ix.Search("topic003", 3)
	}
	if got := search.TermsMined(); got != afterMine {
		t.Fatalf("queries re-mined %d terms", got-afterMine)
	}
	// The engine is built exactly once and shared, even under concurrent
	// first use.
	engines := make([]*Engine, 8)
	var wg sync.WaitGroup
	wg.Add(len(engines))
	for i := range engines {
		go func(i int) {
			defer wg.Done()
			engines[i] = ix.Engine()
		}(i)
	}
	wg.Wait()
	for _, e := range engines {
		if e != engines[0] {
			t.Fatal("Engine() returned distinct instances")
		}
	}
	if got := search.TermsMined(); got != afterMine {
		t.Fatal("Engine() re-mined")
	}
}

// TestPatternIndexSearchMatchesEngine verifies that the index-backed
// search path returns exactly what a freshly built engine returns.
func TestPatternIndexSearchMatchesEngine(t *testing.T) {
	c := synthCollection(t, 6, 20, 18)
	ix := c.MineAllRegional(nil, 0)
	eng := NewRegionalEngine(c, nil)
	for _, q := range []string{"topic000", "topic003 surge", "topic006", "absent"} {
		got := ix.Search(q, 10)
		want := eng.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %q: %d vs %d hits", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q hit %d: %+v != %+v", q, i, got[i], want[i])
			}
		}
	}
}
