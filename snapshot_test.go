package stburst

// Round-trip tests for the snapshot + serving layer: a saved pattern
// index must reload with a byte-identical canonical fingerprint for all
// three pattern kinds, reject damaged input, and answer searches exactly
// like the freshly mined index it came from.

import (
	"bytes"
	"strings"
	"testing"
)

// mineEachKind returns a freshly mined index of every pattern kind over
// the shared deterministic corpus.
func mineEachKind(tb testing.TB, c *Collection) map[string]*PatternIndex {
	tb.Helper()
	return map[string]*PatternIndex{
		"regional":      c.MineAllRegional(nil, 0),
		"combinatorial": c.MineAllCombinatorial(nil, 0),
		"temporal":      c.MineAllTemporal(0),
	}
}

// TestPatternIndexSaveLoadFingerprint is the acceptance check of the
// snapshot subsystem: for every kind, save → load → Fingerprint() is
// byte-identical to the freshly mined index.
func TestPatternIndexSaveLoadFingerprint(t *testing.T) {
	c := synthCollection(t, 8, 40, 12)
	for kind, mined := range mineEachKind(t, c) {
		t.Run(kind, func(t *testing.T) {
			if mined.NumPatterns() == 0 {
				t.Fatalf("corpus mined zero %s patterns; test corpus too small", kind)
			}
			var buf bytes.Buffer
			if err := mined.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			loaded, err := LoadPatternIndex(bytes.NewReader(buf.Bytes()), c)
			if err != nil {
				t.Fatalf("LoadPatternIndex: %v", err)
			}
			if got, want := loaded.Fingerprint(), mined.Fingerprint(); got != want {
				t.Errorf("loaded fingerprint %s, want mined %s", got, want)
			}
			if got, want := loaded.Kind(), mined.Kind(); got != want {
				t.Errorf("loaded kind %s, want %s", got, want)
			}
			if got, want := loaded.NumTerms(), mined.NumTerms(); got != want {
				t.Errorf("loaded %d terms, want %d", got, want)
			}
			if got, want := loaded.NumPatterns(), mined.NumPatterns(); got != want {
				t.Errorf("loaded %d patterns, want %d", got, want)
			}
		})
	}
}

// TestLoadPatternIndexRejectsDamage truncates and corrupts a saved
// snapshot and expects LoadPatternIndex to reject both.
func TestLoadPatternIndexRejectsDamage(t *testing.T) {
	c := synthCollection(t, 6, 30, 9)
	var buf bytes.Buffer
	if err := c.MineAllRegional(nil, 0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := LoadPatternIndex(bytes.NewReader(full[:len(full)/2]), c); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
	corrupt := bytes.Clone(full)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := LoadPatternIndex(bytes.NewReader(corrupt), c); err == nil {
		t.Error("corrupted snapshot loaded without error")
	}
	if _, err := LoadPatternIndex(strings.NewReader("junk"), c); err == nil {
		t.Error("junk input loaded without error")
	}
}

// TestLoadPatternIndexForeignCollection loads a snapshot into a
// collection missing the snapshot's vocabulary and expects an error
// (the snapshot was mined from a different corpus).
func TestLoadPatternIndexForeignCollection(t *testing.T) {
	c := synthCollection(t, 6, 30, 9)
	var buf bytes.Buffer
	if err := c.MineAllRegional(nil, 0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewCollection([]StreamInfo{{Name: "solo"}}, 4)
	if _, err := other.AddText(0, 0, "completely unrelated vocabulary"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPatternIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("snapshot loaded into a foreign collection without error")
	}
}

// TestLoadedIndexServesLikeMined checks the serving path end to end: the
// loaded index answers per-term lookups and TA-backed searches exactly
// like the index it was saved from, without re-mining anything.
func TestLoadedIndexServesLikeMined(t *testing.T) {
	c := synthCollection(t, 8, 40, 12)
	mined := c.MineAllRegional(nil, 0)
	var buf bytes.Buffer
	if err := mined.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPatternIndex(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}

	for _, term := range mined.Terms() {
		if !equalWindows(mined.RegionalPatterns(term), loaded.RegionalPatterns(term)) {
			t.Fatalf("term %q: loaded patterns differ from mined", term)
		}
	}

	queries := []string{"topic000", "topic003 surge", "topic006", "nosuchterm"}
	for _, q := range queries {
		want := mined.Search(q, 10)
		got := loaded.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %q: loaded returned %d hits, mined %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc.ID != want[i].Doc.ID || got[i].Score != want[i].Score {
				t.Errorf("query %q hit %d: loaded %+v, mined %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestLoadCorpusRoundTripsSnapshots ties the CLI pipeline together in
// process: a corpus loaded twice through LoadCorpus interns identically,
// so a snapshot saved against one load verifies against the other.
func TestLoadCorpusRoundTripsSnapshots(t *testing.T) {
	corpus := `{"kind":"topix","streams":["Peru","Japan"],"timeline":6}
{"stream":"Peru","time":1,"counts":{"earthquake":4,"rescue":2},"event":1}
{"stream":"Peru","time":2,"counts":{"earthquake":6},"event":1}
{"stream":"Japan","time":1,"counts":{"earthquake":1},"event":0}
{"stream":"Japan","time":4,"counts":{"trade":3},"event":0}
`
	c1, err := LoadCorpus(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCorpus(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	mined := c1.MineAllTemporal(0)
	var buf bytes.Buffer
	if err := mined.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPatternIndex(bytes.NewReader(buf.Bytes()), c2)
	if err != nil {
		t.Fatalf("snapshot failed to load into a re-loaded corpus: %v", err)
	}
	if got, want := loaded.Fingerprint(), mined.Fingerprint(); got != want {
		t.Errorf("fingerprint across corpus reloads: %s, want %s", got, want)
	}
}
