module stburst

go 1.24
